type versions = {
  update_version : int;
  query_version : int;
  collected_version : int;
}

let checkpoint log ~store ~u ~q ~g =
  let items = Vstore.Store.snapshot_items (Vstore.Store.snapshot store) in
  Log.truncate log;
  Log.append log (Record.Checkpoint { items; u; q; g });
  (* A checkpoint is a synchronous disk write: the snapshot is on stable
     storage before the truncated log is reused. *)
  Log.mark_all_durable log

let replay log ?bound ?gc_renumber () =
  let store = ref (Vstore.Store.create ?bound ?gc_renumber ()) in
  let pending : (int, (string * 'v option) list) Hashtbl.t = Hashtbl.create 64 in
  let u = ref 1 and q = ref 0 and g = ref (-1) in
  let apply txn final_version =
    match Hashtbl.find_opt pending txn with
    | None -> ()
    | Some writes ->
        List.iter
          (fun (key, value) ->
            match value with
            | Some v -> Vstore.Store.write !store key final_version v
            | None -> Vstore.Store.delete !store key final_version)
          (List.rev writes);
        Hashtbl.remove pending txn
  in
  List.iter
    (fun record ->
      match record with
      | Record.Begin { txn; _ } -> Hashtbl.replace pending txn []
      | Record.Update { txn; key; value } ->
          let writes = Option.value (Hashtbl.find_opt pending txn) ~default:[] in
          Hashtbl.replace pending txn ((key, value) :: writes)
      | Record.Commit { txn; final_version } -> apply txn final_version
      | Record.Rollback { txn; keep } -> (
          (* Writes are kept newest-first: keeping the first [keep]
             chronological records means dropping from the front. *)
          match Hashtbl.find_opt pending txn with
          | None -> ()
          | Some writes ->
              let rec drop n l =
                if n <= 0 then l
                else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
              in
              Hashtbl.replace pending txn (drop (List.length writes - keep) writes))
      | Record.Abort { txn } -> Hashtbl.remove pending txn
      | Record.Advance_update v -> if v > !u then u := v
      | Record.Advance_query v -> if v > !q then q := v
      | Record.Collect { collect; query } ->
          if collect > !g then begin
            g := collect;
            Vstore.Store.gc !store ~collect ~query
          end
      | Record.Checkpoint { items; u = cu; q = cq; g = cg } ->
          store :=
            Vstore.Store.restore ?bound ?gc_renumber
              (Vstore.Store.snapshot_of_items items);
          Hashtbl.reset pending;
          u := cu;
          q := cq;
          g := cg)
    (Log.records log);
  (!store, { update_version = !u; query_version = !q; collected_version = !g })

let committed_transactions log =
  List.filter_map
    (function Record.Commit { txn; _ } -> Some txn | _ -> None)
    (Log.records log)

let in_flight_transactions log =
  let begun = Hashtbl.create 32 in
  List.iter
    (fun record ->
      match record with
      | Record.Begin { txn; _ } -> Hashtbl.replace begun txn true
      | Record.Commit { txn; _ } | Record.Abort { txn } ->
          Hashtbl.replace begun txn false
      | _ -> ())
    (Log.records log);
  Hashtbl.fold (fun txn live acc -> if live then txn :: acc else acc) begun []
  |> List.sort compare
