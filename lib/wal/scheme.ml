type kind = No_undo | Undo_redo

let kind_name = function No_undo -> "no-undo" | Undo_redo -> "undo-redo"

type 'v undo_image = Absent | Was_value of 'v | Was_tombstone

type 'v session = {
  s_txn : int;
  mutable s_version : int;
  (* No_undo: deferred writes; [ws_order] keeps first-write order so commit
     applies deterministically. *)
  workspace : (string, 'v option) Hashtbl.t;
  mutable ws_order : string list; (* reversed *)
  (* Undo_redo: one in-memory undo image per touched key (first touch wins),
     newest first. *)
  mutable undo_log : (string * 'v undo_image) list;
  (* Update records appended so far — savepoints log how many to keep. *)
  mutable s_writes : int;
}

type 'v savepoint = {
  sp_writes : int;
  (* No_undo: the workspace as of the mark. *)
  sp_ws_order : string list;
  sp_workspace : (string * 'v option) list;
  (* Undo_redo: keys touched before the mark, with the store image each had
     at the mark (so post-mark in-place overwrites can be reverted). *)
  sp_marked : (string * 'v undo_image) list;
}

type 'v t = {
  scheme_kind : kind;
  st : 'v Vstore.Store.t;
  wal : 'v Log.t;
  mutable stat_mtf : int;
  mutable stat_mtf_trivial : int;
  mutable stat_copied : int;
  mutable stat_undone : int;
}

let create kind ~store ~log =
  {
    scheme_kind = kind;
    st = store;
    wal = log;
    stat_mtf = 0;
    stat_mtf_trivial = 0;
    stat_copied = 0;
    stat_undone = 0;
  }

let kind t = t.scheme_kind
let store t = t.st
let log t = t.wal

let begin_session t ~txn ~version =
  Log.append t.wal (Record.Begin { txn; version });
  {
    s_txn = txn;
    s_version = version;
    workspace = Hashtbl.create 8;
    ws_order = [];
    undo_log = [];
    s_writes = 0;
  }

let txn s = s.s_txn
let version s = s.s_version

let read_own t s key =
  match t.scheme_kind with
  | Undo_redo -> None
  | No_undo -> Hashtbl.find_opt s.workspace key

(* Snapshot what exists at exactly (key, version) so it can be restored. *)
let capture_image t key v =
  if Vstore.Store.exists_in t.st key v then
    match Vstore.Store.read_exact t.st key v with
    | Some value -> Was_value value
    | None -> Was_tombstone
  else Absent

let apply_image t key v = function
  | Absent -> Vstore.Store.remove_version t.st key v
  | Was_value value -> Vstore.Store.write t.st key v value
  | Was_tombstone -> Vstore.Store.delete t.st key v

let apply_to_store t key v = function
  | Some value -> Vstore.Store.write t.st key v value
  | None -> Vstore.Store.delete t.st key v

let write t s key value =
  Log.append t.wal (Record.Update { txn = s.s_txn; key; value });
  s.s_writes <- s.s_writes + 1;
  match t.scheme_kind with
  | No_undo ->
      if not (Hashtbl.mem s.workspace key) then s.ws_order <- key :: s.ws_order;
      Hashtbl.replace s.workspace key value
  | Undo_redo ->
      if not (List.mem_assoc key s.undo_log) then
        s.undo_log <- (key, capture_image t key s.s_version) :: s.undo_log;
      apply_to_store t key s.s_version value

let move_to_future t s ~new_version =
  if new_version > s.s_version then begin
    t.stat_mtf <- t.stat_mtf + 1;
    (match t.scheme_kind with
    | No_undo ->
        (* Deferred writes carry no version: promoting the session's version
           is the whole job. *)
        t.stat_mtf_trivial <- t.stat_mtf_trivial + 1
    | Undo_redo ->
        let old_version = s.s_version in
        (* Newest-first walk: copy each touched item's current state (which
           includes this transaction's updates) into the new version, then
           scrub the old version with the undo image.  Exclusive locks held
           by the transaction guarantee nothing exists yet at new_version. *)
        List.iter
          (fun (key, image) ->
            if Vstore.Store.exists_in t.st key old_version then begin
              Vstore.Store.copy_forward t.st key ~src:old_version
                ~dst:new_version;
              t.stat_copied <- t.stat_copied + 1
            end;
            apply_image t key old_version image;
            t.stat_undone <- t.stat_undone + 1)
          s.undo_log;
        (* The items now live at new_version where nothing pre-existed. *)
        s.undo_log <- List.map (fun (key, _) -> (key, Absent)) s.undo_log);
    s.s_version <- new_version
  end

let savepoint t s =
  match t.scheme_kind with
  | No_undo ->
      {
        sp_writes = s.s_writes;
        sp_ws_order = s.ws_order;
        sp_workspace =
          List.map (fun key -> (key, Hashtbl.find s.workspace key)) s.ws_order;
        sp_marked = [];
      }
  | Undo_redo ->
      {
        sp_writes = s.s_writes;
        sp_ws_order = [];
        sp_workspace = [];
        (* Capture what each already-touched key holds *now* (not its
           first-touch undo image): rollback must revert post-mark
           overwrites while keeping pre-mark ones. *)
        sp_marked =
          List.map
            (fun (key, _) -> (key, capture_image t key s.s_version))
            s.undo_log;
      }

let rollback_to t s sp =
  (match t.scheme_kind with
  | No_undo ->
      Hashtbl.reset s.workspace;
      List.iter
        (fun (key, value) -> Hashtbl.replace s.workspace key value)
        sp.sp_workspace;
      s.ws_order <- sp.sp_ws_order
  | Undo_redo ->
      (* Keys first touched after the mark: scrub them with their undo image
         and drop the entries.  Images captured after the last moveToFuture
         are valid at the session's current version; entries predating an
         mtf were rewritten to [Absent] by it, which correctly scrubs the
         copied-forward slot. *)
      s.undo_log <-
        List.filter
          (fun (key, image) ->
            let marked = List.mem_assoc key sp.sp_marked in
            if not marked then apply_image t key s.s_version image;
            marked)
          s.undo_log;
      (* Keys touched before the mark: restore their mark-time store image
         at the current version (reverting any post-mark overwrite).  Their
         surviving undo entries still record the transaction-start state,
         so a later full abort remains correct. *)
      List.iter
        (fun (key, image) -> apply_image t key s.s_version image)
        sp.sp_marked);
  Log.append t.wal (Record.Rollback { txn = s.s_txn; keep = sp.sp_writes });
  s.s_writes <- sp.sp_writes

let commit t s ~final_version =
  (match t.scheme_kind with
  | No_undo ->
      List.iter
        (fun key -> apply_to_store t key final_version (Hashtbl.find s.workspace key))
        (List.rev s.ws_order)
  | Undo_redo ->
      if final_version <> s.s_version then
        invalid_arg
          "Scheme.commit: undo-redo session must be moved to its final \
           version before commit");
  Log.append t.wal (Record.Commit { txn = s.s_txn; final_version })

let abort t s =
  (match t.scheme_kind with
  | No_undo ->
      Hashtbl.reset s.workspace;
      s.ws_order <- []
  | Undo_redo ->
      List.iter (fun (key, image) -> apply_image t key s.s_version image) s.undo_log;
      s.undo_log <- []);
  Log.append t.wal (Record.Abort { txn = s.s_txn })

let mtf_invocations t = t.stat_mtf
let mtf_trivial t = t.stat_mtf_trivial
let mtf_items_copied t = t.stat_copied
let mtf_undos_applied t = t.stat_undone
