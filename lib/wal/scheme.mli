(** Recovery schemes and their moveToFuture implementations (paper §4).

    The paper defines moveToFuture's mechanics per recovery-scheme family:

    - {b No_undo} (deferred update / no-steal): an active transaction's
      writes live in a private workspace and touch the database only at
      commit, so moveToFuture merely advances the transaction's version
      number — a virtual no-op.
    - {b Undo_redo} (BPR+96-style, in-memory undo records): writes are
      applied to the store in place; moveToFuture walks the transaction's
      records newest-first, copies each touched item from the old version to
      the new one, and applies undo images to scrub the old version.

    A [session] is the per-subtransaction durability context on one node.
    Sessions assume the caller (the update-transaction executor) already
    holds the proper locks; in particular moveToFuture may assume no touched
    item exists in the target version, because the transaction's exclusive
    locks kept everyone else away. *)

type kind = No_undo | Undo_redo

val kind_name : kind -> string

type 'v t

val create : kind -> store:'v Vstore.Store.t -> log:'v Log.t -> 'v t

val kind : _ t -> kind
val store : 'v t -> 'v Vstore.Store.t
val log : 'v t -> 'v Log.t

type 'v session

val begin_session : 'v t -> txn:int -> version:int -> 'v session
(** Also appends the [Begin] log record. *)

val txn : _ session -> int
val version : _ session -> int
(** The session's current version, [V(T_i)]. *)

val read_own : 'v t -> 'v session -> string -> 'v option option
(** [Some (Some v)] — the session wrote [v]; [Some None] — it deleted the
    item; [None] — the session has not written the item (read the store).
    Only [No_undo] sessions ever return [Some _]: under [Undo_redo] the
    store already reflects own writes. *)

val write : 'v t -> 'v session -> string -> 'v option -> unit
(** Record a write ([Some v]) or deletion ([None]) of the item in the
    session's current version, logging the redo record. *)

val move_to_future : 'v t -> 'v session -> new_version:int -> unit
(** Bring the node to the state it would have had if the transaction had
    operated in [new_version] all along.  Never blocks, acquires no locks.
    No-op if [new_version <= version session]. *)

(** {1 Savepoints}

    A savepoint marks a point in the session's write history; rolling back
    to it erases every write made since while keeping earlier ones — the
    partial-abort primitive under the session layer's nested transactions.
    Savepoints compose with [move_to_future]: marks taken before an mtf
    remain valid after it. *)

type 'v savepoint

val savepoint : 'v t -> 'v session -> 'v savepoint
(** Mark the current write-set state.  Logs nothing: an untouched savepoint
    leaves the WAL byte-identical. *)

val rollback_to : 'v t -> 'v session -> 'v savepoint -> unit
(** Restore the write-set to the mark, logging a [Rollback] record so
    recovery replays the same truncation.  Under [No_undo] the deferred
    workspace is reset to the mark; under [Undo_redo] post-mark store
    mutations are reverted in place at the session's current version.
    Rolling back to the same savepoint twice is idempotent. *)

val commit : 'v t -> 'v session -> final_version:int -> unit
(** Make the session's writes durable in [final_version] and log the commit
    record carrying that version.  Callers must have already moved the
    session to [final_version] (the protocol layer does this). *)

val abort : 'v t -> 'v session -> unit
(** Erase every effect of the session and log the abort. *)

(** {1 moveToFuture statistics (experiment E6)} *)

val mtf_invocations : _ t -> int
val mtf_trivial : _ t -> int
(** Invocations that were virtual no-ops (the [No_undo] fast path). *)

val mtf_items_copied : _ t -> int
val mtf_undos_applied : _ t -> int
