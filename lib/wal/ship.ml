type t = {
  mutable sent : int;
  mutable acked : int;
  mutable last_ship : float;
}

let create () = { sent = 0; acked = 0; last_ship = neg_infinity }

let sent t = t.sent
let acked t = t.acked
let last_ship t = t.last_ship

let note_ship t ~upto ~at =
  if upto > t.sent then t.sent <- upto;
  t.last_ship <- at

let note_ack t ~upto = if upto > t.acked then t.acked <- upto

let rewind t ~upto =
  if t.sent > upto then t.sent <- upto;
  if t.acked > upto then t.acked <- upto

let reset t =
  t.sent <- 0;
  t.acked <- 0;
  t.last_ship <- neg_infinity

(* What a primary may ship: only records a crash cannot take back.  With
   the durability model off the whole log is synchronously durable (the
   pre-model semantics), so everything is shippable. *)
let shippable log ~durability_active =
  if durability_active then Log.durable_length log else Log.length log
