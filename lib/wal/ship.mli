(** Log-shipping cursor: one per (primary, backup) pair.

    The primary tracks, per replica, how far into its own log it has
    shipped ([sent]) and how far the replica has acknowledged applying
    ([acked]).  Both are 0-based record counts into the primary's log.
    Only the durable prefix is ever shipped — a record the primary could
    lose in a crash must not reach a replica that would then diverge from
    recovery — so [shippable] is the ship horizon, not [Log.length].

    The cursor itself is primary-side volatile state: after a failover the
    new primary rebuilds cursors from the replicas' actual log lengths
    (their logs are prefixes of its own by construction). *)

type t

val create : unit -> t
val sent : t -> int
val acked : t -> int

val last_ship : t -> float
(** Virtual time of the most recent ship to this replica ([neg_infinity]
    before the first one) — drives loss-repair re-shipping. *)

val note_ship : t -> upto:int -> at:float -> unit
(** A batch covering records [.. upto - 1] left for the replica at [at]. *)

val note_ack : t -> upto:int -> unit
(** The replica acknowledged applying records [.. upto - 1].  Regressions
    are ignored (a stale ack racing a newer one). *)

val rewind : t -> upto:int -> unit
(** Clamp both marks down to [upto] — used when the replica reports a log
    shorter than what was believed shipped (it crashed with batches in
    flight), so the gap is re-sent. *)

val reset : t -> unit
(** Forget everything — the replica needs a full resync from record 0
    (its log diverged: a checkpoint truncated the primary's log, or a
    deposed primary rejoined as a backup). *)

val shippable : _ Log.t -> durability_active:bool -> int
(** The ship horizon: the durable prefix when the durability model is on,
    the whole log otherwise. *)
