type op =
  | Read of { node : int; key : string }
  | Write of { node : int; key : string; value : int }

type update_outcome = Committed | Aborted

type query_outcome = { q_latency : float; q_staleness : float option }

module type DB = sig
  type t

  val name : string
  val node_count : t -> int
  val submit_update : t -> root:int -> ops:op list -> update_outcome
  val submit_query : t -> root:int -> reads:(int * string) list -> query_outcome option
  val submit_scan : t -> root:int -> range:float * float -> query_outcome option
  val submit_join :
    t -> root:int -> build:float * float -> probe:float * float -> query_outcome option
  val max_versions_ever : t -> int
  val extra_stats : t -> (string * float) list

  val metrics_snapshot : t -> Sim.Metrics.snapshot option
  (** The protocol's per-node metrics registry, when it keeps one.
      AVA3-based databases return [Some]; the lock-based baselines
      (which have no version protocol to attribute events to) return
      [None]. *)
end
