(** Protocol-neutral database interface the workload driver runs against.

    AVA3 and every baseline protocol provide an adapter implementing
    {!DB}, so all of them face identical generated workloads. *)

type op =
  | Read of { node : int; key : string }
  | Write of { node : int; key : string; value : int }

type update_outcome = Committed | Aborted

type query_outcome = {
  q_latency : float;
  q_staleness : float option;
      (** age of the snapshot read, when the protocol can tell *)
}

module type DB = sig
  type t

  val name : string

  val node_count : t -> int

  val submit_update : t -> root:int -> ops:op list -> update_outcome
  (** Execute one update transaction (inside a simulation process).  The
      implementation applies its own retry policy for transient aborts; the
      returned outcome is final. *)

  val submit_query : t -> root:int -> reads:(int * string) list -> query_outcome option
  (** Execute one read-only query; [None] if it failed. *)

  val submit_scan : t -> root:int -> range:float * float -> query_outcome option
  (** Execute one predicate range scan over the database's secondary
      attribute.  The range endpoints are fractions of the attribute
      domain ([0. <= lo <= hi <= 1.]); the adapter maps them onto its
      concrete attribute encoding.  [None] if the scan failed or the
      database has no secondary index. *)

  val submit_join :
    t -> root:int -> build:float * float -> probe:float * float -> query_outcome option
  (** Execute one hash join of two attribute ranges (normalized as in
      {!submit_scan}) as a single long read-only transaction.  [None] if
      it failed or the database has no secondary index. *)

  val max_versions_ever : t -> int
  (** High-water mark of live versions of any single item — the headline
      space metric (AVA3: ≤ 3; unbounded MVCC: grows). *)

  val extra_stats : t -> (string * float) list
  (** Protocol-specific counters worth reporting (lock waits, aborts,
      moveToFutures, version-chain lengths, ...). *)

  val metrics_snapshot : t -> Sim.Metrics.snapshot option
  (** The protocol's per-node metrics registry, when it keeps one.
      AVA3-based databases return [Some]; the lock-based baselines
      (which have no version protocol to attribute events to) return
      [None]. *)
end
