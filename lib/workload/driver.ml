type spec = {
  duration : float;
  update_rate : float;
  query_rate : float;
  ops_per_update : int * int;
  update_write_fraction : float;
  reads_per_query : int * int;
  remote_fraction : float;
  long_query_period : float;
  long_query_reads : int;
  node_theta : float;
  storm_factor : float;
  storm_period : float;
  scan_fraction : float;
  join_fraction : float;
}

let default_spec =
  {
    duration = 1000.0;
    update_rate = 0.5;
    query_rate = 0.2;
    ops_per_update = (2, 6);
    update_write_fraction = 0.7;
    reads_per_query = (2, 8);
    remote_fraction = 0.3;
    long_query_period = 0.0;
    long_query_reads = 50;
    node_theta = 0.0;
    storm_factor = 1.0;
    storm_period = 0.0;
    scan_fraction = 0.0;
    join_fraction = 0.0;
  }

type report = {
  committed : int;
  aborted : int;
  queries_ok : int;
  queries_failed : int;
  scans_ok : int;
  joins_ok : int;
  update_latency : Histogram.t;
  query_latency : Histogram.t;
  long_query_latency : Histogram.t;
  scan_latency : Histogram.t;
  join_latency : Histogram.t;
  staleness : Histogram.t;
  generated_duration : float;
}

let update_throughput r =
  if r.generated_duration <= 0.0 then 0.0
  else float_of_int r.committed /. r.generated_duration

let query_throughput r =
  if r.generated_duration <= 0.0 then 0.0
  else float_of_int (r.queries_ok + r.queries_failed) /. r.generated_duration

(* Poisson arrival times over [0, duration).  With a storm configured the
   rate is piecewise constant — [rate *. storm_factor] during the first
   quarter of every [storm_period], [rate] otherwise — and the process is
   generated segment by segment: when an exponential gap would cross a rate
   boundary we restart the draw at the boundary, which by memorylessness
   yields exactly the inhomogeneous Poisson process.  A spec without storms
   takes the original single-rate path, leaving its RNG sequence (and so
   every existing experiment) untouched. *)
let arrival_times rng ~rate ~duration ?(storm_factor = 1.0)
    ?(storm_period = 0.0) () =
  if rate <= 0.0 then []
  else if storm_period <= 0.0 || storm_factor = 1.0 then begin
    let rec collect t acc =
      let t = t +. Sim.Rng.exponential rng ~mean:(1.0 /. rate) in
      if t >= duration then List.rev acc else collect t (t :: acc)
    in
    collect 0.0 []
  end
  else begin
    let burst = storm_period /. 4.0 in
    let rec collect t acc =
      if t >= duration then List.rev acc
      else begin
        let phase = Float.rem t storm_period in
        let in_burst = phase < burst in
        let r = if in_burst then rate *. storm_factor else rate in
        let boundary =
          t -. phase +. (if in_burst then burst else storm_period)
        in
        let t' = t +. Sim.Rng.exponential rng ~mean:(1.0 /. r) in
        if t' > boundary then collect boundary acc
        else if t' >= duration then List.rev acc
        else collect t' (t' :: acc)
      end
    in
    collect 0.0 []
  end

let run (type db) (module Db : Db_intf.DB with type t = db) (db : db) ~engine
    ~rng ~keyspace ~spec =
  let nodes = Keyspace.nodes keyspace in
  (* Hot partitions: transaction/query roots drawn Zipf-skewed over the
     sites.  Because most ops stay local to their root (remote_fraction),
     skewing the root concentrates the data traffic too. *)
  let node_zipf =
    if spec.node_theta > 0.0 then
      Some (Zipf.create ~n:nodes ~theta:spec.node_theta)
    else None
  in
  let pick_root () =
    match node_zipf with
    | Some z -> Zipf.sample z rng
    | None -> Sim.Rng.int rng nodes
  in
  let committed = ref 0 and aborted = ref 0 in
  let queries_ok = ref 0 and queries_failed = ref 0 in
  let scans_ok = ref 0 and joins_ok = ref 0 in
  let update_latency = Histogram.create () in
  let query_latency = Histogram.create () in
  let long_query_latency = Histogram.create () in
  let scan_latency = Histogram.create () in
  let join_latency = Histogram.create () in
  let staleness = Histogram.create () in
  let pick_node root =
    if Sim.Rng.chance rng spec.remote_fraction then Sim.Rng.int rng nodes
    else root
  in
  let gen_update_ops root =
    let lo, hi = spec.ops_per_update in
    let n = Sim.Rng.int_in rng lo hi in
    List.init n (fun _ ->
        let node = pick_node root in
        let key = Keyspace.draw_at keyspace rng ~node in
        if Sim.Rng.chance rng spec.update_write_fraction then
          Db_intf.Write { node; key; value = Sim.Rng.int rng 1_000_000 }
        else Db_intf.Read { node; key })
  in
  let gen_query_reads () =
    let lo, hi = spec.reads_per_query in
    let n = Sim.Rng.int_in rng lo hi in
    List.init n (fun _ -> Keyspace.draw keyspace rng)
  in
  (* Update stream. *)
  List.iter
    (fun at ->
      let root = pick_root () in
      let ops = gen_update_ops root in
      Sim.Engine.schedule engine ~delay:at (fun () ->
          let t0 = Sim.Engine.now engine in
          match Db.submit_update db ~root ~ops with
          | Db_intf.Committed ->
              incr committed;
              Histogram.add update_latency (Sim.Engine.now engine -. t0)
          | Db_intf.Aborted -> incr aborted))
    (arrival_times rng ~rate:spec.update_rate ~duration:spec.duration
       ~storm_factor:spec.storm_factor ~storm_period:spec.storm_period ());
  (* Query stream. *)
  let submit_query ~root ~reads ~latency_hist =
    let t0 = Sim.Engine.now engine in
    match Db.submit_query db ~root ~reads with
    | Some outcome ->
        incr queries_ok;
        Histogram.add latency_hist (Sim.Engine.now engine -. t0);
        Option.iter (Histogram.add staleness) outcome.Db_intf.q_staleness
    | None -> incr queries_failed
  in
  (* Analytical queries (index scans and joins) replace a fraction of the
     point-read query stream.  With both fractions zero (the default) the
     original single-shape path runs and the RNG sequence — and so every
     existing experiment — is untouched. *)
  let submit_analytical ~latency_hist ~ok run =
    let t0 = Sim.Engine.now engine in
    match run () with
    | Some (outcome : Db_intf.query_outcome) ->
        incr queries_ok;
        incr ok;
        Histogram.add latency_hist (Sim.Engine.now engine -. t0);
        Option.iter (Histogram.add staleness) outcome.Db_intf.q_staleness
    | None -> incr queries_failed
  in
  let draw_range () =
    let a = Sim.Rng.float rng 1.0 in
    let b = Sim.Rng.float rng 1.0 in
    if a <= b then (a, b) else (b, a)
  in
  let analytical_fraction = spec.scan_fraction +. spec.join_fraction in
  let query_arrivals =
    arrival_times rng ~rate:spec.query_rate ~duration:spec.duration
      ~storm_factor:spec.storm_factor ~storm_period:spec.storm_period ()
  in
  if analytical_fraction <= 0.0 then
    List.iter
      (fun at ->
        let root = pick_root () in
        let reads = gen_query_reads () in
        Sim.Engine.schedule engine ~delay:at (fun () ->
            submit_query ~root ~reads ~latency_hist:query_latency))
      query_arrivals
  else
    List.iter
      (fun at ->
        let root = pick_root () in
        let shape = Sim.Rng.float rng 1.0 in
        if shape < spec.scan_fraction then begin
          let range = draw_range () in
          Sim.Engine.schedule engine ~delay:at (fun () ->
              submit_analytical ~latency_hist:scan_latency ~ok:scans_ok
                (fun () -> Db.submit_scan db ~root ~range))
        end
        else if shape < analytical_fraction then begin
          let build = draw_range () in
          let probe = draw_range () in
          Sim.Engine.schedule engine ~delay:at (fun () ->
              submit_analytical ~latency_hist:join_latency ~ok:joins_ok
                (fun () -> Db.submit_join db ~root ~build ~probe))
        end
        else begin
          let reads = gen_query_reads () in
          Sim.Engine.schedule engine ~delay:at (fun () ->
              submit_query ~root ~reads ~latency_hist:query_latency)
        end)
      query_arrivals;
  (* Long decision-support queries: sweep many keys across every node. *)
  if spec.long_query_period > 0.0 then begin
    let rec schedule_long at =
      if at < spec.duration then begin
        let root = pick_root () in
        let reads =
          List.init spec.long_query_reads (fun i ->
              let node = i mod nodes in
              (node, Keyspace.draw_at keyspace rng ~node))
        in
        Sim.Engine.schedule engine ~delay:at (fun () ->
            submit_query ~root ~reads ~latency_hist:long_query_latency);
        schedule_long (at +. spec.long_query_period)
      end
    in
    schedule_long spec.long_query_period
  end;
  Sim.Engine.run engine;
  {
    committed = !committed;
    aborted = !aborted;
    queries_ok = !queries_ok;
    queries_failed = !queries_failed;
    scans_ok = !scans_ok;
    joins_ok = !joins_ok;
    update_latency;
    query_latency;
    long_query_latency;
    scan_latency;
    join_latency;
    staleness;
    generated_duration = spec.duration;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>committed=%d aborted=%d queries=%d (failed %d, scans %d, joins %d)@,\
     update latency: %s@,query latency: %s@,long-query latency: %s@,\
     staleness: %s@,throughput: %.2f upd/t %.2f qry/t@]"
    r.committed r.aborted r.queries_ok r.queries_failed r.scans_ok r.joins_ok
    (Histogram.summary r.update_latency)
    (Histogram.summary r.query_latency)
    (Histogram.summary r.long_query_latency)
    (Histogram.summary r.staleness)
    (update_throughput r) (query_throughput r);
  if r.scans_ok > 0 then
    Format.fprintf ppf "@,scan latency: %s" (Histogram.summary r.scan_latency);
  if r.joins_ok > 0 then
    Format.fprintf ppf "@,join latency: %s" (Histogram.summary r.join_latency)
