(** Open-loop workload driver.

    Generates Poisson arrivals of update transactions and read-only queries
    over a partitioned, Zipf-skewed keyspace, plus (optionally) periodic
    long-running decision-support queries — the telephone-call /
    credit-card mix that motivates the paper.  The same driver runs against
    AVA3 and every baseline through {!Db_intf.DB}. *)

type spec = {
  duration : float;  (** virtual time to generate arrivals for *)
  update_rate : float;  (** mean update transactions per time unit *)
  query_rate : float;
  ops_per_update : int * int;  (** inclusive range, uniform *)
  update_write_fraction : float;  (** fraction of update ops that write *)
  reads_per_query : int * int;
  remote_fraction : float;
      (** probability an update op touches a node other than the root *)
  long_query_period : float;  (** 0 disables the long-query stream *)
  long_query_reads : int;
  node_theta : float;
      (** Zipf skew of transaction/query roots over the sites; [0.0]
          (default) keeps roots uniform and the RNG sequence unchanged.
          Because most ops stay local to their root, a positive theta
          concentrates traffic on a few hot partitions. *)
  storm_factor : float;
      (** arrival-rate multiplier during storms; [1.0] disables storms *)
  storm_period : float;
      (** storm cycle length: arrivals run at [rate *. storm_factor] during
          the first quarter of each period and at [rate] otherwise; [0.0]
          (default) disables storms and keeps the RNG sequence unchanged *)
  scan_fraction : float;
      (** fraction of query arrivals executed as secondary-index range
          scans ({!Db_intf.DB.submit_scan}); [0.0] (default) disables the
          analytical shapes and keeps the RNG sequence unchanged *)
  join_fraction : float;
      (** fraction of query arrivals executed as hash joins of two
          attribute ranges ({!Db_intf.DB.submit_join}) *)
}

val default_spec : spec

type report = {
  committed : int;
  aborted : int;
  queries_ok : int;  (** includes successful scans and joins *)
  queries_failed : int;
      (** includes scans/joins against databases with no secondary index *)
  scans_ok : int;
  joins_ok : int;
  update_latency : Histogram.t;
  query_latency : Histogram.t;
  long_query_latency : Histogram.t;
  scan_latency : Histogram.t;
  join_latency : Histogram.t;
  staleness : Histogram.t;  (** snapshot age observed by queries *)
  generated_duration : float;
}

val update_throughput : report -> float
val query_throughput : report -> float

val arrival_times :
  Sim.Rng.t ->
  rate:float ->
  duration:float ->
  ?storm_factor:float ->
  ?storm_period:float ->
  unit ->
  float list
(** Poisson arrival instants over [0, duration).  With [storm_period > 0]
    and [storm_factor <> 1] the rate is piecewise constant:
    [rate *. storm_factor] during the first quarter of each period, [rate]
    otherwise (generated exactly, via memorylessness at the boundaries).
    Exposed for experiment drivers that schedule their own transactions. *)

val run :
  (module Db_intf.DB with type t = 'db) ->
  'db ->
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  keyspace:Keyspace.t ->
  spec:spec ->
  report
(** Schedule all arrivals, drive the engine until quiescence, and report.
    Any processes the caller scheduled beforehand (periodic advancement,
    crash injection) run concurrently. *)

val pp_report : Format.formatter -> report -> unit
