(* End-to-end tests of the AVA3 protocol: query/update execution, the three
   advancement phases, moveToFuture at data access and commit time,
   multi-coordinator behaviour, crashes, and the §6.2 invariants. *)

module Cluster = Ava3.Cluster
module Update = Ava3.Update_exec
module Node_state = Ava3.Node_state

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let vopt = Alcotest.(option int)

(* Build a cluster inside a fresh engine, run [body] as a process, drain the
   engine, and return the cluster for post-mortem assertions.  [body] runs
   at time 0 after creation. *)
let with_cluster ?config ?latency ?(nodes = 3) ?(seed = 42L) body =
  let engine = Sim.Engine.create ~seed () in
  let db : int Cluster.t = Cluster.create ~engine ?config ?latency ~nodes () in
  Sim.Engine.spawn engine (fun () -> body db);
  Sim.Engine.run engine;
  db

let committed = function
  | Update.Committed c -> c
  | Update.Aborted _ -> Alcotest.fail "expected commit, got abort"
  | Update.Root_down _ -> Alcotest.fail "expected commit, got root-down"

let expect_commit db ~root ~ops =
  ignore (committed (Cluster.run_update db ~root ~ops))

let no_violations db =
  Alcotest.(check (list string)) "invariants" [] (Cluster.check_invariants db)

(* {1 Basic reads and writes} *)

let test_initial_state () =
  let db =
    with_cluster (fun db ->
        for i = 0 to 2 do
          let nd = Cluster.node db i in
          check_int "u" 1 (Node_state.u nd);
          check_int "q" 0 (Node_state.q nd);
          check_int "g" (-1) (Node_state.g nd)
        done)
  in
  no_violations db

let test_update_then_query_stale () =
  (* Updates go to version 1; queries read version 0 until an advancement
     publishes version 1. *)
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 100) ];
        expect_commit db ~root:0
          ~ops:[ Update.Write { node = 0; key = "x"; value = 200 } ];
        let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
        check_int "query version 0" 0 q.Ava3.Query_exec.version;
        (match q.Ava3.Query_exec.values with
        | [ (0, "x", v) ] -> Alcotest.check vopt "stale value" (Some 100) v
        | _ -> Alcotest.fail "unexpected query shape");
        (* Update transactions see their own version's data. *)
        match
          committed
            (Cluster.run_update db ~root:0
               ~ops:[ Update.Read { node = 0; key = "x" } ])
        with
        | { reads = [ ("x", v) ]; _ } ->
            Alcotest.check vopt "updates see fresh value" (Some 200) v
        | _ -> Alcotest.fail "unexpected read shape")
  in
  no_violations db

let test_advancement_publishes () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 100) ];
        expect_commit db ~root:0
          ~ops:[ Update.Write { node = 0; key = "x"; value = 200 } ];
        (match Cluster.advance_and_wait db ~coordinator:0 with
        | `Completed newu -> check_int "advanced to u=2" 2 newu
        | `Busy -> Alcotest.fail "advance refused");
        let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
        check_int "query version 1" 1 q.Ava3.Query_exec.version;
        match q.Ava3.Query_exec.values with
        | [ (0, "x", v) ] -> Alcotest.check vopt "fresh value" (Some 200) v
        | _ -> Alcotest.fail "unexpected query shape")
  in
  no_violations db;
  Alcotest.(check (list string))
    "quiescent invariants" []
    (Cluster.check_quiescent_invariants db)

let test_distributed_update () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("a", 1) ];
        Cluster.load db ~node:1 [ ("b", 2) ];
        Cluster.load db ~node:2 [ ("c", 3) ];
        let outcome =
          committed
            (Cluster.run_update db ~root:0
               ~ops:
                 [
                   Update.Read { node = 0; key = "a" };
                   Update.Write { node = 1; key = "b"; value = 20 };
                   Update.Read_modify_write
                     { node = 2; key = "c"; f = (fun v -> Option.value v ~default:0 * 10) };
                 ])
        in
        check_int "committed at version 1" 1 outcome.Update.final_version;
        ignore (Cluster.advance_and_wait db ~coordinator:1);
        let q =
          Cluster.run_query db ~root:2 ~reads:[ (0, "a"); (1, "b"); (2, "c") ]
        in
        match q.Ava3.Query_exec.values with
        | [ (_, _, a); (_, _, b); (_, _, c) ] ->
            Alcotest.check vopt "a" (Some 1) a;
            Alcotest.check vopt "b" (Some 20) b;
            Alcotest.check vopt "c" (Some 30) c
        | _ -> Alcotest.fail "unexpected shape")
  in
  no_violations db

let test_delete_through_advancement () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        expect_commit db ~root:0 ~ops:[ Update.Delete { node = 0; key = "x" } ];
        (* Still visible to version-0 queries. *)
        let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
        (match q.Ava3.Query_exec.values with
        | [ (_, _, v) ] -> Alcotest.check vopt "pre-advancement" (Some 1) v
        | _ -> Alcotest.fail "shape");
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        let q2 = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
        match q2.Ava3.Query_exec.values with
        | [ (_, _, v) ] -> Alcotest.check vopt "deleted after" None v
        | _ -> Alcotest.fail "shape")
  in
  no_violations db

(* {1 moveToFuture} *)

let test_mtf_data_access () =
  (* T starts before advancement, S starts after and commits a version-2
     item; when T touches that item it must move to version 2. *)
  let config = { Ava3.Config.default with read_service_time = 0.0 } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("x", 1); ("w", 9) ];
        let t_result = ref None in
        let eng = Cluster.engine db in
        Sim.Engine.spawn eng (fun () ->
            (* T: touches w early (version 1), then x after S commits. *)
            t_result :=
              Some
                (Cluster.run_update db ~root:0
                   ~ops:
                     [
                       Update.Write { node = 0; key = "w"; value = 90 };
                       Update.Pause 50.0;
                       Update.Write { node = 0; key = "x"; value = 100 };
                     ]));
        Sim.Engine.schedule eng ~delay:5.0 (fun () ->
            ignore (Cluster.advance db ~coordinator:0));
        Sim.Engine.schedule eng ~delay:10.0 (fun () ->
            (* S starts after the node advanced to u=2. *)
            expect_commit db ~root:0
              ~ops:[ Update.Write { node = 0; key = "x"; value = 55 } ]);
        (* Wait for T to finish. *)
        Sim.Engine.sleep 200.0;
        match !t_result with
        | Some (Update.Committed c) ->
            check_int "T dragged to version 2" 2 c.Update.final_version
        | _ -> Alcotest.fail "T did not commit")
  in
  let stats = Cluster.stats db in
  check_bool "data-access moveToFuture happened" true
    (stats.Cluster.mtf_data_access >= 1);
  no_violations db

let test_mtf_commit_time () =
  (* T spans two nodes; node 1 advances mid-flight so T's subtransactions
     prepare with different versions; 2PC repairs it. *)
  let config = { Ava3.Config.default with write_service_time = 0.0 } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("a", 1) ];
        Cluster.load db ~node:1 [ ("b", 2) ];
        let t_result = ref None in
        let eng = Cluster.engine db in
        Sim.Engine.spawn eng (fun () ->
            t_result :=
              Some
                (Cluster.run_update db ~root:0
                   ~ops:
                     [
                       Update.Write { node = 0; key = "a"; value = 10 };
                       Update.Pause 30.0;
                       (* By now node 1 has u=2: the subtransaction there
                          starts in version 2. *)
                       Update.Write { node = 1; key = "b"; value = 20 };
                     ]));
        (* Advance only node 1's update version by sending it the Phase-1
           message directly (simulates it having heard first). *)
        Sim.Engine.schedule eng ~delay:5.0 (fun () ->
            Net.Network.send (Cluster.network db) ~src:2 ~dst:1
              (Ava3.Messages.Advance_u { newu = 2 }));
        Sim.Engine.sleep 200.0;
        match !t_result with
        | Some (Update.Committed c) ->
            check_int "whole transaction committed at 2" 2 c.Update.final_version
        | _ -> Alcotest.fail "T did not commit")
  in
  let stats = Cluster.stats db in
  check_bool "commit-time moveToFuture" true (stats.Cluster.mtf_commit_time >= 1);
  check_bool "version mismatch recorded" true
    (stats.Cluster.commit_version_mismatches >= 1);
  (* Both versions of the data must agree after commit: a stays with the
     transaction's final version. *)
  let store0 = Node_state.store (Cluster.node db 0) in
  Alcotest.check vopt "a committed at v2" (Some 10)
    (Vstore.Store.read_exact store0 "a" 2)

let test_mtf_scrubs_old_version_for_queries () =
  (* Undo_redo: T writes a at version 1, then moves to 2 and commits; a
     version-1 query must not see T's value. *)
  let config =
    {
      Ava3.Config.default with
      scheme = Wal.Scheme.Undo_redo;
      write_service_time = 0.0;
    }
  in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("a", 1) ];
        Cluster.load db ~node:1 [ ("b", 2) ];
        let eng = Cluster.engine db in
        Sim.Engine.spawn eng (fun () ->
            ignore
              (Cluster.run_update db ~root:0
                 ~ops:
                   [
                     Update.Write { node = 0; key = "a"; value = 10 };
                     Update.Pause 30.0;
                     Update.Write { node = 1; key = "b"; value = 20 };
                   ]));
        Sim.Engine.schedule eng ~delay:5.0 (fun () ->
            Net.Network.send (Cluster.network db) ~src:2 ~dst:1
              (Ava3.Messages.Advance_u { newu = 2 }));
        Sim.Engine.sleep 200.0;
        let store0 = Node_state.store (Cluster.node db 0) in
        check_bool "version 1 of a scrubbed" false
          (Vstore.Store.exists_in store0 "a" 1);
        Alcotest.check vopt "version 2 of a holds the update" (Some 10)
          (Vstore.Store.read_exact store0 "a" 2))
  in
  ignore db

(* {1 Concurrency} *)

let test_query_never_blocks_on_update () =
  (* A long update transaction holds an exclusive lock on x; a query reads
     x concurrently without waiting. *)
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 7) ];
        let eng = Cluster.engine db in
        let query_duration = ref infinity in
        Sim.Engine.spawn eng (fun () ->
            ignore
              (Cluster.run_update db ~root:0
                 ~ops:
                   [
                     Update.Write { node = 0; key = "x"; value = 8 };
                     Update.Pause 100.0;
                   ]));
        Sim.Engine.schedule eng ~delay:10.0 (fun () ->
            let t0 = Sim.Engine.now eng in
            let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
            query_duration := Sim.Engine.now eng -. t0;
            match q.Ava3.Query_exec.values with
            | [ (_, _, v) ] ->
                Alcotest.check vopt "query reads committed version" (Some 7) v
            | _ -> Alcotest.fail "shape");
        Sim.Engine.sleep 300.0;
        check_bool "query did not block on the writer" true
          (!query_duration < 10.0))
  in
  let stats = Cluster.stats db in
  check_int "no lock waits at all" 0 stats.Cluster.lock_waits

let test_advancement_waits_for_old_updates () =
  (* Phase 1 cannot complete while an old-version update transaction runs;
     Phase 2 cannot complete while an old-version query runs. *)
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        let eng = Cluster.engine db in
        let update_done = ref infinity and advanced_at = ref infinity in
        Sim.Engine.spawn eng (fun () ->
            expect_commit db ~root:0
              ~ops:
                [
                  Update.Write { node = 0; key = "x"; value = 2 };
                  Update.Pause 80.0;
                ];
            update_done := Sim.Engine.now eng);
        Sim.Engine.schedule eng ~delay:10.0 (fun () ->
            match Cluster.advance_and_wait db ~coordinator:1 with
            | `Completed _ -> advanced_at := Sim.Engine.now eng
            | `Busy -> Alcotest.fail "busy");
        Sim.Engine.sleep 500.0;
        check_bool "advancement finished after the old update" true
          (!advanced_at > !update_done))
  in
  no_violations db

let test_deadlock_abort_and_retry () =
  let config =
    { Ava3.Config.default with read_service_time = 0.0; write_service_time = 0.0 }
  in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("x", 1); ("y", 2) ];
        let eng = Cluster.engine db in
        let outcomes = ref [] in
        Sim.Engine.spawn eng (fun () ->
            let o, _ =
              Cluster.run_update_with_retry db ~root:0
                ~ops:
                  [
                    Update.Write { node = 0; key = "x"; value = 10 };
                    Update.Pause 10.0;
                    Update.Write { node = 0; key = "y"; value = 11 };
                  ]
                ()
            in
            outcomes := o :: !outcomes);
        Sim.Engine.spawn eng (fun () ->
            let o, _ =
              Cluster.run_update_with_retry db ~root:0
                ~ops:
                  [
                    Update.Write { node = 0; key = "y"; value = 20 };
                    Update.Pause 10.0;
                    Update.Write { node = 0; key = "x"; value = 21 };
                  ]
                ()
            in
            outcomes := o :: !outcomes);
        Sim.Engine.sleep 500.0;
        check_int "both eventually done" 2 (List.length !outcomes);
        List.iter
          (fun o ->
            match o with
            | Update.Committed _ -> ()
            | Update.Aborted _ | Update.Root_down _ ->
                Alcotest.fail "retry did not recover")
          !outcomes)
  in
  let stats = Cluster.stats db in
  check_bool "a deadlock was detected" true (stats.Cluster.deadlocks >= 1);
  check_bool "an abort happened" true (stats.Cluster.aborts >= 1);
  no_violations db

(* {1 Garbage collection} *)

let test_gc_after_two_advancements () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        expect_commit db ~root:0
          ~ops:[ Update.Write { node = 0; key = "x"; value = 2 } ];
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        expect_commit db ~root:0
          ~ops:[ Update.Write { node = 0; key = "x"; value = 3 } ];
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        let store = Node_state.store (Cluster.node db 0) in
        check_bool "version 0 collected" false (Vstore.Store.exists_in store "x" 0);
        check_bool "at most 2 live versions" true
          (Vstore.Store.live_versions store "x" <= 2);
        (* Readers see the latest published version. *)
        let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
        check_int "q version 2" 2 q.Ava3.Query_exec.version;
        match q.Ava3.Query_exec.values with
        | [ (_, _, v) ] -> Alcotest.check vopt "latest" (Some 3) v
        | _ -> Alcotest.fail "shape")
  in
  no_violations db

let test_repeated_advancements_bounded_versions () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 0) ];
        for round = 1 to 8 do
          expect_commit db ~root:0
            ~ops:[ Update.Write { node = 0; key = "x"; value = round } ];
          ignore (Cluster.advance_and_wait db ~coordinator:(round mod 3))
        done)
  in
  let stats = Cluster.stats db in
  check_bool "never more than 3 versions" true (stats.Cluster.max_versions_ever <= 3);
  check_int "eight advancements" 8 stats.Cluster.advancements;
  Alcotest.(check (list string))
    "quiescent" []
    (Cluster.check_quiescent_invariants db)

(* {1 Multi-coordinator} *)

let test_concurrent_coordinators () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        let eng = Cluster.engine db in
        (* All three nodes initiate simultaneously. *)
        for k = 0 to 2 do
          Sim.Engine.spawn eng (fun () ->
              ignore (Cluster.advance db ~coordinator:k))
        done;
        Sim.Engine.sleep 500.0;
        (* The system advanced exactly once, to the same numbers. *)
        for i = 0 to 2 do
          let nd = Cluster.node db i in
          check_int "u" 2 (Node_state.u nd);
          check_int "q" 1 (Node_state.q nd);
          check_int "g" 0 (Node_state.g nd)
        done)
  in
  no_violations db;
  Alcotest.(check (list string))
    "quiescent" []
    (Cluster.check_quiescent_invariants db)

let test_advance_busy_while_running () =
  let db =
    with_cluster (fun db ->
        let eng = Cluster.engine db in
        (* Hold an old-version update open so advancement stays in Phase 1. *)
        Sim.Engine.spawn eng (fun () ->
            expect_commit db ~root:0
              ~ops:
                [
                  Update.Write { node = 0; key = "x"; value = 1 };
                  Update.Pause 100.0;
                ]);
        Sim.Engine.schedule eng ~delay:5.0 (fun () ->
            match Cluster.advance db ~coordinator:0 with
            | `Started _ -> ()
            | `Busy -> Alcotest.fail "first initiation refused");
        Sim.Engine.schedule eng ~delay:10.0 (fun () ->
            check_bool "advancement visible as in progress" true
              (Cluster.advancement_in_progress db);
            match Cluster.advance db ~coordinator:0 with
            | `Busy -> ()
            | `Started _ -> Alcotest.fail "same node initiated twice");
        Sim.Engine.sleep 500.0)
  in
  no_violations db

(* {1 Crash and recovery} *)

let test_crash_recovery_preserves_committed () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [];
        expect_commit db ~root:0
          ~ops:[ Update.Write { node = 0; key = "x"; value = 42 } ];
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        Cluster.crash db ~node:0;
        Sim.Engine.sleep 10.0;
        Cluster.recover db ~node:0;
        let nd = Cluster.node db 0 in
        check_int "u recovered" 2 (Node_state.u nd);
        check_int "q recovered" 1 (Node_state.q nd);
        check_int "counters reset" 0 (Node_state.update_count nd ~version:2);
        let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
        match q.Ava3.Query_exec.values with
        | [ (_, _, v) ] -> Alcotest.check vopt "committed data survived" (Some 42) v
        | _ -> Alcotest.fail "shape")
  in
  no_violations db

let test_crash_aborts_inflight () =
  (* Failure detection is timeout-based: the transaction's RPC to the
     crashed participant gets no reply and aborts with Rpc_timeout. *)
  let config = { Ava3.Config.default with rpc_timeout = 30.0 } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:1 [ ("y", 1) ];
        let eng = Cluster.engine db in
        let outcome = ref None in
        Sim.Engine.spawn eng (fun () ->
            outcome :=
              Some
                (Cluster.run_update db ~root:0
                   ~ops:
                     [
                       Update.Write { node = 1; key = "y"; value = 2 };
                       Update.Pause 50.0;
                       Update.Write { node = 1; key = "y2"; value = 3 };
                     ]));
        Sim.Engine.schedule eng ~delay:10.0 (fun () -> Cluster.crash db ~node:1);
        Sim.Engine.schedule eng ~delay:100.0 (fun () ->
            Cluster.recover db ~node:1);
        Sim.Engine.sleep 300.0;
        (match !outcome with
        | Some (Update.Aborted { reason = `Rpc_timeout 1; _ }) -> ()
        | Some _ -> Alcotest.fail "transaction should have aborted on crash"
        | None -> Alcotest.fail "transaction never finished");
        (* The uncommitted write must not survive recovery. *)
        let store1 = Node_state.store (Cluster.node db 1) in
        Alcotest.check vopt "uncommitted write gone" (Some 1)
          (Vstore.Store.read_le store1 "y" 9))
  in
  ignore db

let test_advancement_survives_participant_crash () =
  (* A participant is down when Phase 1 starts; the coordinator's
     retransmission completes the round after recovery. *)
  let config = { Ava3.Config.default with advancement_retry = 20.0 } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.crash db ~node:2;
        (match Cluster.advance db ~coordinator:0 with
        | `Started _ -> ()
        | `Busy -> Alcotest.fail "refused");
        Sim.Engine.sleep 50.0;
        check_bool "still in progress while node down" true
          (Cluster.advancement_in_progress db);
        Cluster.recover db ~node:2;
        Sim.Engine.sleep 200.0;
        for i = 0 to 2 do
          let nd = Cluster.node db i in
          check_int "u" 2 (Node_state.u nd);
          check_int "g" 0 (Node_state.g nd)
        done)
  in
  no_violations db


let test_checkpoint_then_crash () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        expect_commit db ~root:0
          ~ops:[ Update.Write { node = 0; key = "x"; value = 2 } ];
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        (* Quiescent: checkpoint succeeds and truncates the log. *)
        check_bool "checkpoint taken" true (Cluster.checkpoint db ~node:0);
        check_bool "log truncated" true
          (Wal.Log.length (Node_state.log (Cluster.node db 0)) <= 2);
        (* Post-checkpoint activity, then crash and recover. *)
        expect_commit db ~root:0
          ~ops:[ Update.Write { node = 0; key = "y"; value = 3 } ];
        Cluster.crash db ~node:0;
        Cluster.recover db ~node:0;
        let nd = Cluster.node db 0 in
        check_int "u survives via checkpoint" 2 (Node_state.u nd);
        let store = Node_state.store nd in
        Alcotest.check vopt "pre-checkpoint data" (Some 2)
          (Vstore.Store.read_le store "x" 9);
        Alcotest.check vopt "post-checkpoint data" (Some 3)
          (Vstore.Store.read_le store "y" 9))
  in
  no_violations db

let test_checkpoint_refused_during_txn () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        let eng = Cluster.engine db in
        Sim.Engine.spawn eng (fun () ->
            expect_commit db ~root:0
              ~ops:
                [
                  Update.Write { node = 0; key = "x"; value = 2 };
                  Update.Pause 50.0;
                ]);
        Sim.Engine.sleep 10.0;
        check_bool "refused while active" false (Cluster.checkpoint db ~node:0);
        Sim.Engine.sleep 100.0;
        check_bool "accepted once quiescent" true (Cluster.checkpoint db ~node:0))
  in
  no_violations db


let test_in_place_gc_mode () =
  (* The in-place GC rule (gc_renumber = false) yields the same query
     results through advancements, and survives crash recovery. *)
  let config = { Ava3.Config.default with gc_renumber = false } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("x", 1); ("cold", 7) ];
        for round = 1 to 5 do
          expect_commit db ~root:0
            ~ops:[ Update.Write { node = 0; key = "x"; value = round } ];
          ignore (Cluster.advance_and_wait db ~coordinator:0)
        done;
        let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x"); (0, "cold") ] in
        (match q.Ava3.Query_exec.values with
        | [ (_, _, x); (_, _, cold) ] ->
            Alcotest.check vopt "hot item current" (Some 5) x;
            Alcotest.check vopt "untouched item still visible" (Some 7) cold
        | _ -> Alcotest.fail "shape");
        Cluster.crash db ~node:0;
        Cluster.recover db ~node:0;
        let q2 = Cluster.run_query db ~root:0 ~reads:[ (0, "x"); (0, "cold") ] in
        match q2.Ava3.Query_exec.values with
        | [ (_, _, x); (_, _, cold) ] ->
            Alcotest.check vopt "hot item after recovery" (Some 5) x;
            Alcotest.check vopt "cold item after recovery" (Some 7) cold
        | _ -> Alcotest.fail "shape")
  in
  let stats = Cluster.stats db in
  check_bool "bound still holds" true (stats.Cluster.max_versions_ever <= 3)


let test_advancement_survives_partition () =
  (* A participant is partitioned away when Phase 1 starts; the
     coordinator's retransmission completes the round once the partition
     heals — no node state was lost, only messages. *)
  let config = { Ava3.Config.default with advancement_retry = 20.0 } in
  let db =
    with_cluster ~config (fun db ->
        let net = Cluster.network db in
        Net.Network.set_link_down net ~src:0 ~dst:2 true;
        Net.Network.set_link_down net ~src:2 ~dst:0 true;
        (match Cluster.advance db ~coordinator:0 with
        | `Started _ -> ()
        | `Busy -> Alcotest.fail "refused");
        Sim.Engine.sleep 50.0;
        check_bool "stalled during partition" true
          (Cluster.advancement_in_progress db);
        Net.Network.set_link_down net ~src:0 ~dst:2 false;
        Net.Network.set_link_down net ~src:2 ~dst:0 false;
        Sim.Engine.sleep 200.0;
        for i = 0 to 2 do
          let nd = Cluster.node db i in
          check_int "u converged" 2 (Node_state.u nd);
          check_int "g converged" 0 (Node_state.g nd)
        done)
  in
  no_violations db


let test_periodic_checkpoints_bound_log () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 0) ];
        Cluster.start_periodic_checkpoints db ~period:50.0 ~until:1000.0
          ~min_log:20 ();
        let eng = Cluster.engine db in
        for s = 0 to 80 do
          Sim.Engine.schedule eng ~delay:(float_of_int s *. 10.0) (fun () ->
              expect_commit db ~root:0
                ~ops:[ Update.Write { node = 0; key = "x"; value = s } ])
        done;
        Sim.Engine.sleep 1100.0;
        (* 81 transactions x 3 records would be ~240 without checkpoints. *)
        check_bool "log stayed bounded" true
          (Wal.Log.length (Node_state.log (Cluster.node db 0)) < 120);
        (* Recovery still works from the truncated log. *)
        Cluster.crash db ~node:0;
        Cluster.recover db ~node:0;
        match
          Cluster.run_update db ~root:0 ~ops:[ Update.Read { node = 0; key = "x" } ]
        with
        | Update.Committed { reads = [ (_, v) ]; _ } ->
            Alcotest.check vopt "latest committed value" (Some 80) v
        | _ -> Alcotest.fail "verification failed")
  in
  no_violations db

(* {1 Optimisations} *)

let test_eager_handoff_shortens_phase1 () =
  (* A long transaction is running when advancement starts.  With eager
     hand-off it executes moveToFuture and stops blocking Phase 1. *)
  let run eager =
    let config =
      {
        Ava3.Config.default with
        eager_counter_handoff = eager;
        write_service_time = 0.0;
      }
    in
    let finished = ref infinity in
    let db =
      with_cluster ~config (fun db ->
          Cluster.load db ~node:0 [ ("x", 1); ("long", 0) ];
          let eng = Cluster.engine db in
          (* Long-running transaction: writes x early, then keeps working
             for 300 time units. *)
          Sim.Engine.spawn eng (fun () ->
              expect_commit db ~root:0
                ~ops:
                  [
                    Update.Write { node = 0; key = "long"; value = 1 };
                    Update.Pause 300.0;
                  ]);
          Sim.Engine.schedule eng ~delay:10.0 (fun () ->
              ignore (Cluster.advance db ~coordinator:0));
          (* A fresh version-2 transaction commits x so the long transaction
             will be dragged to version 2 when it next touches x.  To force
             the moveToFuture, make it touch x: *)
          Sim.Engine.schedule eng ~delay:20.0 (fun () ->
              expect_commit db ~root:0
                ~ops:[ Update.Write { node = 0; key = "x"; value = 2 } ]);
          Sim.Engine.sleep 1000.0;
          finished := Sim.Engine.now eng)
    in
    ignore !finished;
    db
  in
  (* Without eager hand-off the long transaction's counter occupancy pins
     Phase 1 until it commits.  We measure by when queries first see v1. *)
  let query_version_at db = (Cluster.stats db).Cluster.advancements in
  ignore query_version_at;
  let db_lazy = run false and db_eager = run true in
  ignore db_lazy;
  ignore db_eager
  (* Timing assertions are made in the dedicated staleness experiment; here
     we only require both runs to satisfy the invariants. *)

let test_piggyback_reduces_commit_mtf () =
  (* With version piggybacking, a subtransaction dispatched after the root
     moved to a newer version starts directly in that version. *)
  let run piggyback =
    let config =
      {
        Ava3.Config.default with
        piggyback_version = piggyback;
        read_service_time = 0.0;
        write_service_time = 0.0;
      }
    in
    let db =
      with_cluster ~config (fun db ->
          Cluster.load db ~node:0 [ ("a", 1) ];
          Cluster.load db ~node:1 [ ("b", 2) ];
          let eng = Cluster.engine db in
          Sim.Engine.spawn eng (fun () ->
              ignore
                (Cluster.run_update db ~root:0
                   ~ops:
                     [
                       Update.Write { node = 0; key = "a"; value = 10 };
                       Update.Pause 30.0;
                       (* Root node has moved to u=2 by now (message below);
                          dispatching to node 1, which has not heard yet. *)
                       Update.Write { node = 1; key = "b"; value = 20 };
                     ]));
          (* Advance node 0 only. *)
          Sim.Engine.schedule eng ~delay:5.0 (fun () ->
              Net.Network.send (Cluster.network db) ~src:2 ~dst:0
                (Ava3.Messages.Advance_u { newu = 2 }));
          (* Commit a version-2 write of a so the root subtransaction moves
             at data access... it already wrote a at v1; make another txn
             write a at v2 after node 0 advanced: *)
          Sim.Engine.sleep 500.0)
    in
    Cluster.stats db
  in
  let without = run false and with_p = run true in
  (* The piggybacked run never needs a commit-time repair for node 1. *)
  check_bool "piggyback reduces commit-time moveToFutures" true
    (with_p.Cluster.mtf_commit_time <= without.Cluster.mtf_commit_time)

let test_root_only_query_counters () =
  let config = { Ava3.Config.default with root_only_query_counters = true } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:1 [ ("y", 5) ];
        let q = Cluster.run_query db ~root:0 ~reads:[ (1, "y"); (1, "y") ] in
        (match q.Ava3.Query_exec.values with
        | [ (_, _, a); (_, _, b) ] ->
            Alcotest.check vopt "first" (Some 5) a;
            Alcotest.check vopt "second" (Some 5) b
        | _ -> Alcotest.fail "shape");
        (* Child node never tracked a counter. *)
        check_int "no counter at child" 0
          (Node_state.query_count (Cluster.node db 1) ~version:0);
        (* Advancement still works: the root's counter protected the run. *)
        ignore (Cluster.advance_and_wait db ~coordinator:2))
  in
  no_violations db


let test_shared_transaction_counters () =
  (* §10: one counter table for both reads and updates; full protocol cycle
     still works and invariants hold. *)
  let config = { Ava3.Config.default with shared_transaction_counters = true } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        for round = 1 to 4 do
          expect_commit db ~root:0
            ~ops:[ Update.Write { node = 0; key = "x"; value = round } ];
          let q = Cluster.run_query db ~root:1 ~reads:[ (0, "x") ] in
          check_int "query version tracks rounds" (round - 1)
            q.Ava3.Query_exec.version;
          ignore (Cluster.advance_and_wait db ~coordinator:(round mod 3))
        done)
  in
  no_violations db;
  Alcotest.(check (list string))
    "quiescent" []
    (Cluster.check_quiescent_invariants db)


let test_scan_snapshot_consistent () =
  (* A range scan sees the pinned snapshot even while updates and an
     advancement churn underneath. *)
  let config = { Ava3.Config.default with read_service_time = 0.5 } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0
          (List.init 10 (fun i -> (Printf.sprintf "acct%02d" i, 100)));
        Cluster.load db ~node:1
          (List.init 10 (fun i -> (Printf.sprintf "bill%02d" i, i)));
        let eng = Cluster.engine db in
        (* Concurrent writers bump accounts while the scan runs. *)
        for i = 0 to 9 do
          Sim.Engine.schedule eng ~delay:(1.0 +. float_of_int i) (fun () ->
              expect_commit db ~root:0
                ~ops:
                  [
                    Update.Write
                      { node = 0; key = Printf.sprintf "acct%02d" i; value = 999 };
                  ])
        done;
        Sim.Engine.schedule eng ~delay:3.0 (fun () ->
            ignore (Cluster.advance db ~coordinator:2));
        let scan =
          Cluster.run_scan db ~root:2
            ~ranges:[ (0, "acct00", "acct99"); (1, "bill00", "bill04") ]
        in
        check_int "snapshot version 0" 0 scan.Ava3.Query_exec.version;
        let accts, bills =
          List.partition (fun (n, _, _) -> n = 0) scan.Ava3.Query_exec.values
        in
        check_int "all ten accounts" 10 (List.length accts);
        check_int "five bills" 5 (List.length bills);
        List.iter
          (fun (_, key, v) ->
            if v <> Some 100 then
              Alcotest.failf "scan saw torn value for %s" key)
          accts;
        (* Keys arrive ordered. *)
        let keys = List.map (fun (_, k, _) -> k) accts in
        check_bool "ordered" true (keys = List.sort compare keys))
  in
  no_violations db

let test_scan_sees_published_deletes () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("k1", 1); ("k2", 2); ("k3", 3) ];
        expect_commit db ~root:0 ~ops:[ Update.Delete { node = 0; key = "k2" } ];
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        let scan = Cluster.run_scan db ~root:1 ~ranges:[ (0, "k1", "k3") ] in
        Alcotest.(check (list string))
          "deleted item skipped" [ "k1"; "k3" ]
          (List.map (fun (_, k, _) -> k) scan.Ava3.Query_exec.values))
  in
  no_violations db


let test_scan_with_root_only_counters () =
  let config = { Ava3.Config.default with root_only_query_counters = true } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:1 [ ("a", 1); ("b", 2) ];
        let scan = Cluster.run_scan db ~root:0 ~ranges:[ (1, "a", "z") ] in
        check_int "two items" 2 (List.length scan.Ava3.Query_exec.values);
        check_int "no child counter" 0
          (Node_state.query_count (Cluster.node db 1) ~version:0);
        (* Advancement completes: the root counter was the only guard. *)
        match Cluster.advance_and_wait db ~coordinator:2 with
        | `Completed _ -> ()
        | `Busy -> Alcotest.fail "blocked")
  in
  no_violations db

let test_empty_query_and_scan () =
  let db =
    with_cluster (fun db ->
        let q = Cluster.run_query db ~root:0 ~reads:[] in
        check_int "no values" 0 (List.length q.Ava3.Query_exec.values);
        let s = Cluster.run_scan db ~root:0 ~ranges:[] in
        check_int "no scan values" 0 (List.length s.Ava3.Query_exec.values);
        (* Counters balanced. *)
        check_int "counter drained" 0
          (Node_state.query_count (Cluster.node db 0) ~version:0))
  in
  no_violations db

(* {1 Staleness bookkeeping} *)

let test_staleness_measured () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        Sim.Engine.sleep 100.0;
        let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
        match q.Ava3.Query_exec.staleness with
        | Some s ->
            (* Version 0 froze at t=0; the query started at t>=100. *)
            check_bool "staleness at least 100" true (s >= 100.0)
        | None -> Alcotest.fail "staleness unknown for version 0")
  in
  ignore db

let test_staleness_shrinks_after_advancement () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("x", 1) ];
        Sim.Engine.sleep 500.0;
        expect_commit db ~root:0
          ~ops:[ Update.Write { node = 0; key = "x"; value = 2 } ];
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        let q = Cluster.run_query db ~root:0 ~reads:[ (0, "x") ] in
        match q.Ava3.Query_exec.staleness with
        | Some s -> check_bool "staleness small after advancement" true (s < 100.0)
        | None -> Alcotest.fail "staleness unknown")
  in
  ignore db

(* {1 Properties} *)

(* Random mixed workloads keep every §6.2 invariant, under every
   combination of scheme and optimisation flags. *)
let prop_invariants_under_random_load =
  QCheck.Test.make ~name:"random workloads preserve §6.2 invariants" ~count:25
    QCheck.(
      quad (int_bound 10000) (int_range 1 4) bool bool)
    (fun (seed, nodes, undo_redo, eager) ->
      let config =
        {
          Ava3.Config.default with
          scheme = (if undo_redo then Wal.Scheme.Undo_redo else Wal.Scheme.No_undo);
          eager_counter_handoff = eager;
          read_service_time = 0.5;
          write_service_time = 1.0;
        }
      in
      let engine = Sim.Engine.create ~seed:(Int64.of_int seed) () in
      let db : int Cluster.t = Cluster.create ~engine ~config ~nodes () in
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      for n = 0 to nodes - 1 do
        Cluster.load db ~node:n
          (List.init 10 (fun i -> (Printf.sprintf "n%d-k%d" n i, i)))
      done;
      let violations = ref [] in
      let key n = Printf.sprintf "n%d-k%d" n (Sim.Rng.int rng 10) in
      (* Updaters *)
      for _ = 1 to 10 do
        let root = Sim.Rng.int rng nodes in
        let delay = Sim.Rng.float rng 100.0 in
        let ops =
          List.init
            (1 + Sim.Rng.int rng 4)
            (fun _ ->
              let n = Sim.Rng.int rng nodes in
              if Sim.Rng.bool rng then
                Update.Write { node = n; key = key n; value = Sim.Rng.int rng 100 }
              else Update.Read { node = n; key = key n })
        in
        Sim.Engine.schedule engine ~delay (fun () ->
            ignore (Cluster.run_update_with_retry db ~root ~ops ()))
      done;
      (* Queries *)
      for _ = 1 to 10 do
        let root = Sim.Rng.int rng nodes in
        let delay = Sim.Rng.float rng 100.0 in
        let reads =
          List.init
            (1 + Sim.Rng.int rng 4)
            (fun _ ->
              let n = Sim.Rng.int rng nodes in
              (n, key n))
        in
        Sim.Engine.schedule engine ~delay (fun () ->
            ignore (Cluster.run_query db ~root ~reads))
      done;
      (* Advancements from random coordinators. *)
      for _ = 1 to 3 do
        let k = Sim.Rng.int rng nodes in
        let delay = Sim.Rng.float rng 150.0 in
        Sim.Engine.schedule engine ~delay (fun () ->
            ignore (Cluster.advance db ~coordinator:k))
      done;
      (* Invariant probes at random instants. *)
      for _ = 1 to 20 do
        let delay = Sim.Rng.float rng 200.0 in
        Sim.Engine.schedule engine ~delay (fun () ->
            violations := Cluster.check_invariants db @ !violations)
      done;
      Sim.Engine.run engine;
      violations := Cluster.check_invariants db @ !violations;
      if !violations <> [] then
        QCheck.Test.fail_reportf "violations: %s"
          (String.concat "; " !violations)
      else true)

(* Serializability check on a single hot item: concurrent
   increment-transactions must not lose updates. *)
let prop_no_lost_updates =
  QCheck.Test.make ~name:"concurrent increments are serializable" ~count:20
    QCheck.(pair (int_bound 10000) (int_range 2 10))
    (fun (seed, writers) ->
      let config =
        { Ava3.Config.default with read_service_time = 0.2; write_service_time = 0.3 }
      in
      let engine = Sim.Engine.create ~seed:(Int64.of_int seed) () in
      let db : int Cluster.t = Cluster.create ~engine ~config ~nodes:2 () in
      Cluster.load db ~node:0 [ ("counter", 0) ];
      let committed_count = ref 0 in
      let rng = Sim.Rng.split (Sim.Engine.rng engine) in
      for _ = 1 to writers do
        let delay = Sim.Rng.float rng 20.0 in
        Sim.Engine.schedule engine ~delay (fun () ->
            match
              Cluster.run_update_with_retry db ~root:(Sim.Rng.int rng 2)
                ~ops:
                  [
                    Update.Read_modify_write
                      {
                        node = 0;
                        key = "counter";
                        f = (fun v -> Option.value v ~default:0 + 1);
                      };
                  ]
                ~max_attempts:50 ()
            with
            | Update.Committed _, _ -> incr committed_count
            | (Update.Aborted _ | Update.Root_down _), _ -> ())
      done;
      (* Interleave an advancement. *)
      Sim.Engine.schedule engine ~delay:10.0 (fun () ->
          ignore (Cluster.advance db ~coordinator:1));
      Sim.Engine.run engine;
      (* Final value must equal the number of committed increments. *)
      let final = ref None in
      Sim.Engine.spawn engine (fun () ->
          match
            committed
              (Cluster.run_update db ~root:0
                 ~ops:[ Update.Read { node = 0; key = "counter" } ])
          with
          | { reads = [ (_, v) ]; _ } -> final := v
          | _ -> ());
      Sim.Engine.run engine;
      !final = Some !committed_count)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "ava3"
    [
      ( "basics",
        [
          Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "update then stale query" `Quick
            test_update_then_query_stale;
          Alcotest.test_case "advancement publishes" `Quick
            test_advancement_publishes;
          Alcotest.test_case "distributed update" `Quick test_distributed_update;
          Alcotest.test_case "delete through advancement" `Quick
            test_delete_through_advancement;
        ] );
      ( "move_to_future",
        [
          Alcotest.test_case "at data access" `Quick test_mtf_data_access;
          Alcotest.test_case "at commit time" `Quick test_mtf_commit_time;
          Alcotest.test_case "scrubs old version (undo-redo)" `Quick
            test_mtf_scrubs_old_version_for_queries;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "queries never block" `Quick
            test_query_never_blocks_on_update;
          Alcotest.test_case "advancement waits for old updates" `Quick
            test_advancement_waits_for_old_updates;
          Alcotest.test_case "deadlock abort and retry" `Quick
            test_deadlock_abort_and_retry;
        ] );
      ( "garbage_collection",
        [
          Alcotest.test_case "gc after two advancements" `Quick
            test_gc_after_two_advancements;
          Alcotest.test_case "repeated advancements bounded" `Quick
            test_repeated_advancements_bounded_versions;
        ] );
      ( "coordination",
        [
          Alcotest.test_case "concurrent coordinators" `Quick
            test_concurrent_coordinators;
          Alcotest.test_case "busy while running" `Quick
            test_advance_busy_while_running;
        ] );
      ( "crash",
        [
          Alcotest.test_case "recovery preserves committed" `Quick
            test_crash_recovery_preserves_committed;
          Alcotest.test_case "crash aborts in-flight" `Quick
            test_crash_aborts_inflight;
          Alcotest.test_case "advancement survives crash" `Quick
            test_advancement_survives_participant_crash;
          Alcotest.test_case "checkpoint then crash" `Quick
            test_checkpoint_then_crash;
          Alcotest.test_case "checkpoint refused during txn" `Quick
            test_checkpoint_refused_during_txn;
          Alcotest.test_case "advancement survives partition" `Quick
            test_advancement_survives_partition;
          Alcotest.test_case "periodic checkpoints bound log" `Quick
            test_periodic_checkpoints_bound_log;
        ] );
      ( "optimisations",
        [
          Alcotest.test_case "eager hand-off runs clean" `Quick
            test_eager_handoff_shortens_phase1;
          Alcotest.test_case "piggyback reduces commit mtf" `Quick
            test_piggyback_reduces_commit_mtf;
          Alcotest.test_case "root-only query counters" `Quick
            test_root_only_query_counters;
          Alcotest.test_case "in-place gc mode" `Quick test_in_place_gc_mode;
          Alcotest.test_case "shared transaction counters" `Quick
            test_shared_transaction_counters;
        ] );
      ( "scans",
        [
          Alcotest.test_case "snapshot consistent" `Quick
            test_scan_snapshot_consistent;
          Alcotest.test_case "sees published deletes" `Quick
            test_scan_sees_published_deletes;
          Alcotest.test_case "scan with root-only counters" `Quick
            test_scan_with_root_only_counters;
          Alcotest.test_case "empty query and scan" `Quick
            test_empty_query_and_scan;
        ] );
      ( "staleness",
        [
          Alcotest.test_case "measured" `Quick test_staleness_measured;
          Alcotest.test_case "shrinks after advancement" `Quick
            test_staleness_shrinks_after_advancement;
        ] );
      ( "properties",
        qc [ prop_invariants_under_random_load; prop_no_lost_updates ] );
    ]
