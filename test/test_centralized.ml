(* Tests for the centralized (single-site) AVA3 variant of paper §7. *)

module C = Ava3.Centralized
module Update = Ava3.Update_exec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let vopt = Alcotest.(option int)

let with_db ?config body =
  let engine = Sim.Engine.create ~seed:5L () in
  let db : int C.t = C.create ~engine ?config () in
  Sim.Engine.spawn engine (fun () -> body db);
  Sim.Engine.run engine;
  db

let committed = function
  | Update.Committed c -> c
  | Update.Aborted _ -> Alcotest.fail "unexpected abort"
  | Update.Root_down _ -> Alcotest.fail "unexpected root-down"

let test_basic_cycle () =
  let db =
    with_db (fun db ->
        C.load db [ ("x", 1) ];
        ignore (committed (C.run_update db ~ops:[ C.Write ("x", 2) ]));
        (* Query still sees version 0. *)
        let q = C.run_query db ~keys:[ "x" ] in
        (match q.Ava3.Query_exec.values with
        | [ (_, _, v) ] -> Alcotest.check vopt "stale" (Some 1) v
        | _ -> Alcotest.fail "shape");
        (match C.advance_and_wait db with
        | `Completed 2 -> ()
        | _ -> Alcotest.fail "advance");
        let q2 = C.run_query db ~keys:[ "x" ] in
        match q2.Ava3.Query_exec.values with
        | [ (_, _, v) ] -> Alcotest.check vopt "fresh" (Some 2) v
        | _ -> Alcotest.fail "shape")
  in
  Alcotest.(check (list string)) "invariants" [] (C.check_invariants db)

let test_no_distributed_commit () =
  (* Single-site transactions commit without any version mismatch. *)
  let db =
    with_db (fun db ->
        C.load db [ ("a", 1); ("b", 2) ];
        for i = 1 to 20 do
          ignore
            (committed
               (C.run_update db
                  ~ops:
                    [
                      C.Read_modify_write
                        ("a", fun v -> Option.value v ~default:0 + i);
                      C.Write ("b", i);
                    ]))
        done)
  in
  let stats = C.stats db in
  check_int "no mismatches possible" 0 stats.Ava3.Cluster.commit_version_mismatches;
  check_int "twenty commits" 20 stats.Ava3.Cluster.commits

let test_rmw_and_delete () =
  let db =
    with_db (fun db ->
        C.load db [ ("x", 10) ];
        ignore
          (committed
             (C.run_update db
                ~ops:
                  [
                    C.Read_modify_write ("x", fun v -> Option.value v ~default:0 * 2);
                    C.Delete "x";
                    C.Read "x";
                  ]));
        ())
  in
  ignore db

let test_read_own_delete () =
  (* A transaction that deletes an item then reads it sees its own
     deletion. *)
  let observed = ref (Some 999) in
  let _ =
    with_db (fun db ->
        C.load db [ ("x", 10) ];
        match
          committed
            (C.run_update db ~ops:[ C.Delete "x"; C.Read "x" ])
        with
        | { Update.reads = [ (_, v) ]; _ } -> observed := v
        | _ -> Alcotest.fail "shape")
  in
  Alcotest.check vopt "own delete visible" None !observed

let test_mtf_still_happens_centralized () =
  (* §7: update transactions still move to the future when they encounter
     later-version data mid-advancement. *)
  let config =
    { Ava3.Config.default with read_service_time = 0.0; write_service_time = 0.0 }
  in
  let db =
    with_db ~config (fun db ->
        C.load db [ ("x", 1); ("y", 2) ];
        let eng = Sim.Engine.current () in
        Sim.Engine.spawn eng (fun () ->
            ignore
              (C.run_update db
                 ~ops:[ C.Write ("y", 20); C.Pause 30.0; C.Write ("x", 10) ]));
        Sim.Engine.sleep 5.0;
        (match C.advance db with `Started _ -> () | `Busy -> Alcotest.fail "busy");
        Sim.Engine.sleep 5.0;
        (* A fresh (version-2) transaction commits x. *)
        ignore (committed (C.run_update db ~ops:[ C.Write ("x", 99) ]));
        Sim.Engine.sleep 100.0)
  in
  let stats = C.stats db in
  check_bool "data-access moveToFuture" true (stats.Ava3.Cluster.mtf_data_access >= 1);
  check_int "still no aborts" 0 stats.Ava3.Cluster.aborts

let test_three_version_bound_centralized () =
  let db =
    with_db (fun db ->
        C.load db [ ("x", 0) ];
        for round = 1 to 6 do
          ignore (committed (C.run_update db ~ops:[ C.Write ("x", round) ]));
          ignore (C.advance_and_wait db)
        done)
  in
  let stats = C.stats db in
  check_bool "bound holds" true (stats.Ava3.Cluster.max_versions_ever <= 3)

let test_queries_lock_free_centralized () =
  let db =
    with_db (fun db ->
        C.load db [ ("x", 1) ];
        let eng = Sim.Engine.current () in
        Sim.Engine.spawn eng (fun () ->
            ignore
              (C.run_update db ~ops:[ C.Write ("x", 2); C.Pause 50.0 ]));
        Sim.Engine.sleep 10.0;
        let t0 = Sim.Engine.now eng in
        ignore (C.run_query db ~keys:[ "x" ]);
        check_bool "no blocking" true (Sim.Engine.now eng -. t0 < 5.0))
  in
  let stats = C.stats db in
  check_int "queries never wait on locks" 0 stats.Ava3.Cluster.lock_waits

let test_busy_during_advancement () =
  let _ =
    with_db (fun db ->
        C.load db [ ("x", 1) ];
        let eng = Sim.Engine.current () in
        (* Keep an old-version transaction open so Phase 1 stalls. *)
        Sim.Engine.spawn eng (fun () ->
            ignore (C.run_update db ~ops:[ C.Write ("x", 2); C.Pause 40.0 ]));
        Sim.Engine.sleep 5.0;
        (match C.advance db with `Started _ -> () | `Busy -> Alcotest.fail "refused");
        Sim.Engine.sleep 5.0;
        (match C.advance db with
        | `Busy -> ()
        | `Started _ -> Alcotest.fail "double start");
        Sim.Engine.sleep 200.0)
  in
  ()

let () =
  Alcotest.run "centralized"
    [
      ( "basics",
        [
          Alcotest.test_case "write/advance/read cycle" `Quick test_basic_cycle;
          Alcotest.test_case "no distributed commit" `Quick
            test_no_distributed_commit;
          Alcotest.test_case "rmw and delete" `Quick test_rmw_and_delete;
          Alcotest.test_case "read own delete" `Quick test_read_own_delete;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "moveToFuture still happens" `Quick
            test_mtf_still_happens_centralized;
          Alcotest.test_case "three version bound" `Quick
            test_three_version_bound_centralized;
          Alcotest.test_case "queries lock free" `Quick
            test_queries_lock_free_centralized;
          Alcotest.test_case "busy during advancement" `Quick
            test_busy_during_advancement;
        ] );
    ]
