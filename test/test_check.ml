(* Tests for the schedule explorer (lib/check): it must convict the
   deliberately broken toy store within a bounded schedule count with a
   minimized, replayable counterexample; clear the corrected twin over
   the same schedule space; replay deterministically; and find nothing
   in a bounded exploration of the real protocol. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Convicting the buggy toy store} *)

let test_toy_torn_found () =
  let r = Explorer.explore ~budget:500 Scenarios.toy_torn in
  match r.violation with
  | None -> Alcotest.fail "explorer missed the torn snapshot"
  | Some v ->
      check_bool "reports a torn snapshot" true
        (List.exists
           (fun m ->
             String.length m >= 4 && String.sub m 0 4 = "torn")
           v.v_messages);
      check_bool "counterexample is small" true
        (List.length v.v_decisions <= 4);
      (* Replay the minimized decision vector from scratch: it must
         reproduce the violation. *)
      let decisions =
        List.map (fun (d : Explorer.decision) -> d.index) v.v_decisions
      in
      let out = Explorer.replay ~record_trace:false Scenarios.toy_torn decisions in
      check_bool "minimized counterexample replays to the violation" true
        (out.r_messages <> [])

let test_toy_lost_update_found () =
  let r = Explorer.explore ~budget:500 Scenarios.toy_lost_update in
  match r.violation with
  | None -> Alcotest.fail "explorer missed the lost update"
  | Some v ->
      (* The race is one flipped tie: minimization must get it down to a
         single decision. *)
      check_int "minimized to one decision" 1 (List.length v.v_decisions);
      let out =
        Explorer.replay ~record_trace:false Scenarios.toy_lost_update
          (List.map (fun (d : Explorer.decision) -> d.index) v.v_decisions)
      in
      check_bool "replays to the violation" true (out.r_messages <> [])

(* {1 Clearing the corrected twins} *)

let test_toy_safe_clean () =
  let r = Explorer.explore ~budget:500 Scenarios.toy_safe in
  check_bool "no violation" true (r.violation = None);
  check_bool "space exhausted within budget" true r.stats.exhausted

let test_toy_rmw_safe_clean () =
  let r = Explorer.explore ~budget:500 Scenarios.toy_rmw_safe in
  check_bool "no violation" true (r.violation = None);
  check_bool "space exhausted within budget" true r.stats.exhausted

(* {1 Determinism} *)

let test_replay_deterministic () =
  (* The same decision vector must reproduce the identical final state
     fingerprint, run after run — replayability rests on this. *)
  let decisions = [ 0; 1; 1 ] in
  let fp_of () =
    (Explorer.replay ~record_trace:false Scenarios.toy_safe decisions)
      .r_fingerprint
  in
  let a = fp_of () and b = fp_of () in
  check_bool "fingerprint present" true (a <> None);
  Alcotest.(check bool) "same trace, same fingerprint" true (a = b)

let test_default_schedule_is_empty_vector () =
  let a = (Explorer.replay ~record_trace:false Scenarios.toy_safe []).r_fingerprint
  and b =
    (Explorer.replay ~record_trace:false Scenarios.toy_safe [ 0; 0 ])
      .r_fingerprint
  in
  Alcotest.(check bool)
    "explicit zeros equal the default schedule" true
    (a = b && a <> None)

(* {1 Counterexample files} *)

let test_counterexample_roundtrip () =
  let path = Filename.temp_file "ava3-ce" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Counterexample.save ~path ~scenario:"toy-torn"
        ~decisions:[ (0, "tie(writer|reader)"); (1, "tie(writer|reader)") ]
        ~messages:[ "torn snapshot: x=1 y=0" ];
      let ce = Counterexample.load ~path in
      Alcotest.(check string) "scenario survives" "toy-torn" ce.scenario;
      Alcotest.(check (list int)) "decisions survive" [ 0; 1 ] ce.decisions)

let test_counterexample_end_to_end () =
  (* Find, save, load, replay: the full violation pipeline. *)
  let r = Explorer.explore ~budget:500 Scenarios.toy_torn in
  match r.violation with
  | None -> Alcotest.fail "no violation found"
  | Some v ->
      let path = Filename.temp_file "ava3-ce" ".txt" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Counterexample.save ~path ~scenario:"toy-torn"
            ~decisions:
              (List.map
                 (fun (d : Explorer.decision) -> (d.index, d.label))
                 v.v_decisions)
            ~messages:v.v_messages;
          let ce = Counterexample.load ~path in
          let sc = Option.get (Scenarios.find ce.scenario) in
          let out = Explorer.replay ~record_trace:false sc ce.decisions in
          check_bool "loaded counterexample reproduces" true
            (out.r_messages <> []))

(* {1 Exploring the real protocol} *)

let test_race2_clean_small_budget () =
  let r = Explorer.explore ~budget:300 Scenarios.race2 in
  check_bool "no violation in a bounded exploration" true (r.violation = None);
  check_bool "many schedules enumerated" true (r.stats.schedules >= 100);
  check_bool "several choice points per run" true (r.stats.choice_points > 0)

(* {1 Group-commit durability} *)

let test_group_commit_crash_clean () =
  (* Acks only leave after the disk force: no crash placement may lose an
     acknowledged commit, on any explored schedule. *)
  let r = Explorer.explore ~budget:300 Scenarios.group_commit_crash in
  check_bool "no violation in a bounded exploration" true (r.violation = None);
  check_bool "several schedules enumerated" true (r.stats.schedules >= 50)

let test_group_commit_crash_buggy_convicted () =
  (* The ack-before-force twin: some schedule crashes the node between a
     commit's enqueue and the batch force, losing an acknowledged commit —
     the explorer must find it and the counterexample must replay. *)
  let r = Explorer.explore ~budget:300 Scenarios.group_commit_crash_buggy in
  match r.violation with
  | None -> Alcotest.fail "explorer missed the early-ack durability bug"
  | Some v ->
      let out =
        Explorer.replay ~record_trace:false Scenarios.group_commit_crash_buggy
          (List.map (fun (d : Explorer.decision) -> d.index) v.v_decisions)
      in
      check_bool "minimized counterexample replays to the violation" true
        (out.r_messages <> [])

(* {1 Session savepoints} *)

let test_savepoint_rollback_clean () =
  (* Rollback releases the scope's locks, so the workload is
     deadlock-free and all three session transactions commit on every
     schedule — the space is small enough to exhaust. *)
  let r = Explorer.explore ~budget:2_000 Scenarios.savepoint_rollback in
  check_bool "no violation" true (r.violation = None);
  check_bool "space exhausted" true r.stats.exhausted

let test_savepoint_leak_buggy_convicted () =
  (* The leak twin keeps the scope's locks after rollback: some schedule
     closes the A->x B->y wait cycle and the all-committed oracle
     convicts; the minimized counterexample must replay. *)
  let r = Explorer.explore ~budget:2_000 Scenarios.savepoint_leak_buggy in
  match r.violation with
  | None -> Alcotest.fail "explorer missed the savepoint lock leak"
  | Some v ->
      let out =
        Explorer.replay ~record_trace:false Scenarios.savepoint_leak_buggy
          (List.map (fun (d : Explorer.decision) -> d.index) v.v_decisions)
      in
      check_bool "minimized counterexample replays to the violation" true
        (out.r_messages <> [])

let test_session_dsl_clean () =
  (* The generated DSL program (same generator seed as stress --sessions
     and E15) with its choice points explored: every schedule completes
     and commits it. *)
  let r = Explorer.explore ~budget:2_000 Scenarios.session_dsl in
  check_bool "no violation" true (r.violation = None);
  check_bool "space exhausted" true r.stats.exhausted;
  check_bool "choice points explored" true (r.stats.choice_points > 0)

let test_prune_only_skips_converged () =
  (* Pruned and unpruned exploration of an exhaustible space must agree
     on the set of distinct final states. *)
  let a = Explorer.explore ~budget:500 ~prune:true Scenarios.toy_torn
  and b = Explorer.explore ~budget:500 ~prune:false Scenarios.toy_torn in
  check_bool "both convict" true (a.violation <> None && b.violation <> None)

let () =
  Alcotest.run "check"
    [
      ( "toy bugs",
        [
          Alcotest.test_case "torn snapshot found" `Quick test_toy_torn_found;
          Alcotest.test_case "lost update found" `Quick
            test_toy_lost_update_found;
          Alcotest.test_case "safe twin clean" `Quick test_toy_safe_clean;
          Alcotest.test_case "atomic twin clean" `Quick test_toy_rmw_safe_clean;
          Alcotest.test_case "prune agrees with no-prune" `Quick
            test_prune_only_skips_converged;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay deterministic" `Quick
            test_replay_deterministic;
          Alcotest.test_case "zeros equal default" `Quick
            test_default_schedule_is_empty_vector;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "file roundtrip" `Quick
            test_counterexample_roundtrip;
          Alcotest.test_case "find-save-load-replay" `Quick
            test_counterexample_end_to_end;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "race2 clean under small budget" `Quick
            test_race2_clean_small_budget;
          Alcotest.test_case "group-commit crash clean" `Quick
            test_group_commit_crash_clean;
          Alcotest.test_case "group-commit early-ack convicted" `Quick
            test_group_commit_crash_buggy_convicted;
          Alcotest.test_case "savepoint rollback clean" `Quick
            test_savepoint_rollback_clean;
          Alcotest.test_case "savepoint lock leak convicted" `Quick
            test_savepoint_leak_buggy_convicted;
          Alcotest.test_case "session DSL program clean" `Quick
            test_session_dsl_clean;
        ] );
    ]
