(* Config.validate: every nonsensical knob class is rejected with
   Config.Invalid, sane configs (including the defaults every
   experiment starts from) pass, and the check is wired into
   Cluster.create so no simulator entry point can run on garbage. *)

module C = Ava3.Config

let check_bool = Alcotest.(check bool)

let rejected config =
  match C.validate config with
  | () -> false
  | exception C.Invalid _ -> true

let test_default_valid () =
  check_bool "default config passes" false (rejected C.default)

let test_tree_arity () =
  check_bool "negative tree_arity rejected" true
    (rejected { C.default with tree_arity = -1 });
  check_bool "flat (0) fine" false (rejected { C.default with tree_arity = 0 });
  check_bool "tree-8 fine" false (rejected { C.default with tree_arity = 8 })

let test_rpc_timeout () =
  check_bool "zero timeout rejected" true
    (rejected { C.default with rpc_timeout = 0.0 });
  check_bool "negative timeout rejected" true
    (rejected { C.default with rpc_timeout = -5.0 });
  check_bool "nan timeout rejected" true
    (rejected { C.default with rpc_timeout = Float.nan });
  check_bool "infinity means no timeout" false
    (rejected { C.default with rpc_timeout = infinity });
  check_bool "finite positive fine" false
    (rejected { C.default with rpc_timeout = 25.0 })

let test_network_costs () =
  check_bool "negative send_occupancy rejected" true
    (rejected { C.default with send_occupancy = -0.1 });
  check_bool "nan send_occupancy rejected" true
    (rejected { C.default with send_occupancy = Float.nan });
  check_bool "negative rpc_batch_window rejected" true
    (rejected { C.default with rpc_batch_window = -1.0 });
  check_bool "zero costs fine" false
    (rejected { C.default with send_occupancy = 0.0; rpc_batch_window = 0.0 })

let test_durability_knobs () =
  check_bool "negative disk_force_latency rejected" true
    (rejected { C.default with disk_force_latency = -0.5 });
  check_bool "infinite disk_force_latency rejected" true
    (rejected { C.default with disk_force_latency = infinity });
  check_bool "negative group_commit_window rejected" true
    (rejected { C.default with group_commit_window = -1.0 });
  check_bool "zero-batch group commit rejected" true
    (rejected { C.default with group_commit_batch = 0 });
  check_bool "negative batch rejected" true
    (rejected { C.default with group_commit_batch = -3 });
  check_bool "real durability config fine" false
    (rejected
       {
         C.default with
         disk_force_latency = 0.4;
         group_commit_window = 1.0;
         group_commit_batch = 8;
       })

let test_service_times () =
  check_bool "negative read_service_time rejected" true
    (rejected { C.default with read_service_time = -0.1 });
  check_bool "negative write_service_time rejected" true
    (rejected { C.default with write_service_time = -0.1 });
  check_bool "negative gc_item_time rejected" true
    (rejected { C.default with gc_item_time = -0.1 });
  check_bool "free (zero-cost) services fine" false
    (rejected
       {
         C.default with
         read_service_time = 0.0;
         write_service_time = 0.0;
         gc_item_time = 0.0;
       })

let test_advancement_retry () =
  check_bool "zero retry period rejected" true
    (rejected { C.default with advancement_retry = 0.0 });
  check_bool "negative retry rejected" true
    (rejected { C.default with advancement_retry = -1.0 });
  check_bool "infinite retry rejected" true
    (rejected { C.default with advancement_retry = infinity })

let test_partition_aware_needs_tree () =
  check_bool "partition_aware without tree rejected" true
    (rejected { C.default with partition_aware = true; tree_arity = 0 });
  check_bool "partition_aware with tree fine" false
    (rejected { C.default with partition_aware = true; tree_arity = 4 })

let test_replication_knobs () =
  check_bool "negative replicas rejected" true
    (rejected { C.default with replicas = -1 });
  check_bool "replicas = 0 fine" false (rejected { C.default with replicas = 0 });
  check_bool "replicas = 2 fine" false (rejected { C.default with replicas = 2 });
  check_bool "replicas with tree rounds rejected" true
    (rejected { C.default with replicas = 1; tree_arity = 4 });
  check_bool "zero catch-up timeout rejected" true
    (rejected { C.default with replica_catchup_timeout = 0.0 });
  check_bool "negative catch-up timeout rejected" true
    (rejected { C.default with replica_catchup_timeout = -3.0 });
  check_bool "nan catch-up timeout rejected" true
    (rejected { C.default with replica_catchup_timeout = Float.nan });
  check_bool "infinite catch-up timeout rejected" true
    (rejected { C.default with replica_catchup_timeout = infinity });
  check_bool "negative ship window rejected" true
    (rejected { C.default with replica_ship_window = -1.0 });
  check_bool "nan ship window rejected" true
    (rejected { C.default with replica_ship_window = Float.nan });
  check_bool "coalesced shipping fine" false
    (rejected { C.default with replicas = 1; replica_ship_window = 2.0 });
  check_bool "ack-early without replicas rejected" true
    (rejected { C.default with replica_ack_early = true });
  check_bool "ack-early twin with replicas fine" false
    (rejected { C.default with replicas = 1; replica_ack_early = true })

let test_session_knobs () =
  check_bool "negative max_retries rejected" true
    (rejected { C.default with max_retries = -1 });
  check_bool "zero retries fine (no automatic retry)" false
    (rejected { C.default with max_retries = 0 });
  check_bool "negative backoff base rejected" true
    (rejected { C.default with retry_backoff_base = -1.0 });
  check_bool "nan backoff base rejected" true
    (rejected { C.default with retry_backoff_base = Float.nan });
  check_bool "infinite backoff base rejected" true
    (rejected { C.default with retry_backoff_base = infinity });
  check_bool "zero backoff base fine (immediate retries)" false
    (rejected { C.default with retry_backoff_base = 0.0 });
  check_bool "zero pool rejected" true
    (rejected { C.default with session_pool_size = 0 });
  check_bool "negative pool rejected" true
    (rejected { C.default with session_pool_size = -3 });
  check_bool "leak twin knob is a valid (deliberately broken) config" false
    (rejected { C.default with savepoint_leak = true })

let test_message_names_knob () =
  (* The error text must name the offending knob so a CLI user can act
     on it. *)
  let msg config =
    match C.validate config with
    | () -> ""
    | exception C.Invalid m -> m
  in
  let contains hay needle =
    let n = String.length needle and len = String.length hay in
    let rec go i = i + n <= len && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "names tree_arity" true
    (contains (msg { C.default with tree_arity = -2 }) "tree_arity");
  check_bool "names rpc_timeout" true
    (contains (msg { C.default with rpc_timeout = 0.0 }) "rpc_timeout");
  check_bool "names group_commit_window" true
    (contains
       (msg { C.default with group_commit_window = -1.0 })
       "group_commit_window");
  check_bool "names replicas" true
    (contains (msg { C.default with replicas = -1 }) "replicas");
  check_bool "names replica_catchup_timeout" true
    (contains
       (msg { C.default with replica_catchup_timeout = 0.0 })
       "replica_catchup_timeout");
  check_bool "names replica_ship_window" true
    (contains
       (msg { C.default with replica_ship_window = -2.0 })
       "replica_ship_window");
  check_bool "names replica_ack_early" true
    (contains (msg { C.default with replica_ack_early = true }) "replica_ack_early");
  check_bool "names max_retries" true
    (contains (msg { C.default with max_retries = -1 }) "max_retries");
  check_bool "names retry_backoff_base" true
    (contains
       (msg { C.default with retry_backoff_base = -1.0 })
       "retry_backoff_base");
  check_bool "names session_pool_size" true
    (contains
       (msg { C.default with session_pool_size = 0 })
       "session_pool_size")

let test_cluster_create_validates () =
  (* The wiring, not just the function: Cluster.create must refuse a bad
     config before any setup. *)
  let engine = Sim.Engine.create ~trace:false () in
  let bad = { C.default with tree_arity = -1 } in
  check_bool "Cluster.create rejects invalid config" true
    (match Ava3.Cluster.create ~engine ~config:bad ~nodes:2 () with
    | (_ : int Ava3.Cluster.t) -> false
    | exception C.Invalid _ -> true);
  (* And a valid one still builds. *)
  let (_ : int Ava3.Cluster.t) =
    Ava3.Cluster.create ~engine ~config:C.default ~nodes:2 ()
  in
  ()

let () =
  Alcotest.run "config"
    [
      ( "validate",
        [
          Alcotest.test_case "default valid" `Quick test_default_valid;
          Alcotest.test_case "tree_arity" `Quick test_tree_arity;
          Alcotest.test_case "rpc_timeout" `Quick test_rpc_timeout;
          Alcotest.test_case "network costs" `Quick test_network_costs;
          Alcotest.test_case "durability knobs" `Quick test_durability_knobs;
          Alcotest.test_case "service times" `Quick test_service_times;
          Alcotest.test_case "advancement retry" `Quick test_advancement_retry;
          Alcotest.test_case "partition-aware needs tree" `Quick
            test_partition_aware_needs_tree;
          Alcotest.test_case "replication knobs" `Quick test_replication_knobs;
          Alcotest.test_case "session knobs" `Quick test_session_knobs;
          Alcotest.test_case "errors name the knob" `Quick
            test_message_names_knob;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "Cluster.create validates" `Quick
            test_cluster_create_validates;
        ] );
    ]
