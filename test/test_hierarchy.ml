(* Hierarchical advancement (Config.tree_arity > 0) must be observationally
   equivalent to the paper's flat rounds: same final version numbers at
   every site, same committed data, same transaction outcomes — only the
   acknowledgment topology changes.  The workload below keeps transactions
   spaced in time and disjoint in keys, and reads results only after the
   cluster settles, so the comparison cannot depend on the transient
   message micro-interleavings that legitimately differ between layouts. *)

let nodes = 13
let coordinator = 0
let duration = 600.0

type summary = {
  uqg : (int * int * int) list;  (* per site, ascending *)
  commits : int;
  aborts : int;
  queries : int;
  advancements : int;
  finals : (string * int option) list;  (* settled value per key *)
  coord_egress : int;  (* messages the coordinator put on the wire *)
}

let run_one ~config ~data_sites =
  let engine = Sim.Engine.create ~seed:0xA11CEL ~trace:false () in
  let db : int Ava3.Cluster.t =
    Ava3.Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
      ~nodes ()
  in
  let key s = Printf.sprintf "a%d" s in
  List.iter
    (fun s -> Ava3.Cluster.load db ~node:s [ (key s, 100 + s) ])
    data_sites;
  Ava3.Cluster.start_periodic_advancement db ~coordinator ~period:50.0
    ~until:duration;
  let ds = Array.of_list data_sites in
  let nd = Array.length ds in
  (* Two-site updates every 10 time units; writes to one key repeat only
     every [nd] transactions, far apart, so no two ever conflict. *)
  for i = 0 to 39 do
    let root = ds.(i mod nd) in
    let other = ds.((i + 1) mod nd) in
    Sim.Engine.schedule engine
      ~delay:(5.0 +. (10.0 *. float_of_int i))
      (fun () ->
        ignore
          (Ava3.Cluster.run_update db ~root
             ~ops:
               [
                 Ava3.Update_exec.Write
                   { node = root; key = key root; value = 1000 + i };
                 Ava3.Update_exec.Write
                   { node = other; key = key other; value = 2000 + i };
               ]))
  done;
  (* Queries placed just before each round starts, when the previous round
     has long settled at every site. *)
  for i = 0 to 9 do
    let root = ds.(i mod nd) in
    Sim.Engine.schedule engine
      ~delay:(45.0 +. (50.0 *. float_of_int i))
      (fun () ->
        ignore (Ava3.Cluster.run_query db ~root ~reads:[ (root, key root) ]))
  done;
  let out = ref None in
  Sim.Engine.schedule engine ~delay:(duration +. 20.0) (fun () ->
      let rec settle n =
        if n = 0 then failwith "cluster would not settle"
        else
          match Ava3.Cluster.advance_and_wait db ~coordinator with
          | `Completed _ -> ()
          | `Busy ->
              Sim.Engine.sleep 10.0;
              settle (n - 1)
      in
      settle 8;
      settle 8;
      (match Ava3.Cluster.check_quiescent_invariants db with
      | [] -> ()
      | problems -> failwith (String.concat "; " problems));
      let finals =
        List.map
          (fun s ->
            let r = Ava3.Cluster.run_query db ~root:s ~reads:[ (s, key s) ] in
            match r.Ava3.Query_exec.values with
            | [ (_, k, v) ] -> (k, v)
            | _ -> assert false)
          data_sites
      in
      let stats = Ava3.Cluster.stats db in
      let net = Ava3.Cluster.network db in
      let egress = ref 0 in
      for dst = 0 to nodes - 1 do
        egress := !egress + Net.Network.link_count net ~src:coordinator ~dst
      done;
      out :=
        Some
          {
            uqg =
              List.init nodes (fun i ->
                  let n = Ava3.Cluster.node db i in
                  ( Ava3.Node_state.u n,
                    Ava3.Node_state.q n,
                    Ava3.Node_state.g n ));
            commits = stats.Ava3.Cluster.commits;
            aborts = stats.Ava3.Cluster.aborts;
            queries = stats.Ava3.Cluster.queries;
            advancements = stats.Ava3.Cluster.advancements;
            finals;
            coord_egress = !egress;
          });
  Sim.Engine.run engine;
  match !out with Some s -> s | None -> failwith "final process never ran"

let all_sites = List.init nodes Fun.id
let versions = Alcotest.(list (triple int int int))
let finals = Alcotest.(list (pair string (option int)))

let check_equivalent name a b =
  Alcotest.check versions (name ^ ": final u/q/g per site") a.uqg b.uqg;
  Alcotest.check finals (name ^ ": settled values") a.finals b.finals;
  Alcotest.(check int) (name ^ ": commits") a.commits b.commits;
  Alcotest.(check int) (name ^ ": aborts") a.aborts b.aborts;
  Alcotest.(check int) (name ^ ": queries") a.queries b.queries;
  Alcotest.(check int) (name ^ ": advancements") a.advancements b.advancements

let config ~tree_arity ~partition_aware =
  { Ava3.Config.default with tree_arity; partition_aware }

let test_tree_matches_flat () =
  let flat =
    run_one ~config:(config ~tree_arity:0 ~partition_aware:false)
      ~data_sites:all_sites
  in
  Alcotest.(check int) "no aborts in a conflict-free run" 0 flat.aborts;
  List.iter
    (fun arity ->
      let tree =
        run_one ~config:(config ~tree_arity:arity ~partition_aware:false)
          ~data_sites:all_sites
      in
      check_equivalent (Printf.sprintf "arity %d" arity) flat tree;
      Alcotest.(check bool)
        (Printf.sprintf
           "arity %d coordinator egress (%d) below flat egress (%d)" arity
           tree.coord_egress flat.coord_egress)
        true
        (tree.coord_egress < flat.coord_egress))
    [ 2; 3; 8 ]

let test_partition_aware_matches_flat () =
  (* Data (and with it every transaction and query root) confined to five
     sites; the other eight ride along fire-and-forget and must still end
     at the same version numbers. *)
  let data_sites = [ 0; 3; 5; 8; 11 ] in
  let flat =
    run_one ~config:(config ~tree_arity:0 ~partition_aware:false) ~data_sites
  in
  let tree =
    run_one ~config:(config ~tree_arity:3 ~partition_aware:true) ~data_sites
  in
  check_equivalent "arity 3 + partition-aware" flat tree;
  Alcotest.(check bool)
    (Printf.sprintf "partition-aware egress (%d) below flat egress (%d)"
       tree.coord_egress flat.coord_egress)
    true
    (tree.coord_egress < flat.coord_egress)

let () =
  Alcotest.run "hierarchy"
    [
      ( "equivalence",
        [
          Alcotest.test_case "tree == flat (all sites participate)" `Quick
            test_tree_matches_flat;
          Alcotest.test_case "tree == flat (partition-aware)" `Quick
            test_partition_aware_matches_flat;
        ] );
    ]
