(* Secondary-index tests: Vindex unit coverage (attach bootstrap, listener
   maintenance across every mutation path, probe edge cases, join-operator
   agreement) and the end-to-end indexed-vs-full-scan equivalence oracle —
   [`Both_check] selects and joins racing updates, advancement and a
   nemesis, across ten seeds under both GC renumbering rules, with the
   index↔base invariant probed throughout and at quiescence. *)

module Cluster = Ava3.Cluster
module Update = Ava3.Update_exec
module Qx = Ava3.Query_exec
module Node_state = Ava3.Node_state
module Tq = Ava3.Tree_query
module Index = Vindex.Index
module Join = Vindex.Join
module Store = Vstore.Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let no_msgs what msgs = Alcotest.(check (list string)) what [] msgs

(* The attribute shared with stress/dbsim: a dense three-digit bucket of the
   integer value, so range predicates are meaningful and collisions occur. *)
let extract v = Printf.sprintf "a%03d" (((v mod 1000) + 1000) mod 1000)
let full_range = ("a000", "a999")

let with_index_cluster ?config ?(nodes = 3) ?(seed = 42L) body =
  let engine = Sim.Engine.create ~seed () in
  let db : int Cluster.t =
    Cluster.create ~engine ?config ~index:extract ~nodes ()
  in
  Sim.Engine.spawn engine (fun () -> body db);
  Sim.Engine.run engine;
  db

let rows_of (r : int Qx.result) =
  List.filter_map
    (fun (n, k, v) -> Option.map (fun v -> (n, k, v)) v)
    r.Qx.values

(* {1 Vindex unit coverage} *)

let test_attach_bootstrap () =
  (* Attaching to a populated store indexes its current contents; the probe
     contract holds immediately. *)
  let st : int Store.t = Store.create () in
  for i = 0 to 19 do
    Store.write st (Printf.sprintf "k%02d" i) 0 (i * 7)
  done;
  Store.delete st "k03" 0;
  let ix = Index.attach st ~extract in
  no_msgs "consistent after bootstrap" (Index.check ix ~version:0);
  let lo, hi = full_range in
  let probed = Index.probe ix ~lo ~hi 0 in
  check_int "tombstone excluded" 19 (List.length probed);
  check_bool "probe = full_scan" true (probed = Index.full_scan ix ~lo ~hi 0)

let test_listener_paths () =
  (* Every mutation funnels through the listener: write (in-place and new
     version), delete, copy_forward, prune.  The index answers per-version
     and stays audit-clean throughout. *)
  let st : int Store.t = Store.create () in
  let ix = Index.attach st ~extract in
  Store.write st "x" 0 5;
  Store.write st "y" 0 6;
  Store.write st "x" 1 7;
  Store.delete st "y" 1;
  let lo, hi = full_range in
  check_bool "v0 sees both" true
    (Index.probe ix ~lo ~hi 0 = [ ("x", 5); ("y", 6) ]);
  check_bool "v1 sees the survivor's new value" true
    (Index.probe ix ~lo ~hi 1 = [ ("x", 7) ]);
  check_bool "attribute predicate follows the version" true
    (Index.probe ix ~lo:"a005" ~hi:"a005" 1 = []
    && Index.probe ix ~lo:"a007" ~hi:"a007" 1 = [ ("x", 7) ]);
  Store.copy_forward st "y" ~src:0 ~dst:2;
  check_bool "copy_forward resurfaces y at v2" true
    (Index.probe ix ~lo ~hi 2 = [ ("x", 7); ("y", 6) ]);
  no_msgs "consistent v0" (Index.check ix ~version:0);
  no_msgs "consistent v2" (Index.check ix ~version:2);
  Store.prune_below st ~keep:1;
  no_msgs "consistent after prune" (Index.check ix ~version:2);
  check_bool "post-prune probe intact" true
    (Index.probe ix ~lo ~hi 2 = [ ("x", 7); ("y", 6) ]);
  let s = Index.stats ix in
  check_bool "listener fired for every mutation" true (s.Index.updates >= 5);
  (* In-place overwrite moves the key between attribute buckets. *)
  Store.write st "x" 2 123;
  check_bool "rebucketed" true
    (Index.probe ix ~lo:"a123" ~hi:"a123" 2 = [ ("x", 123) ]
    && Index.probe ix ~lo:"a007" ~hi:"a007" 2 = []);
  Index.detach ix;
  Store.write st "z" 2 1;
  (* Detached: the store no longer feeds the index. *)
  check_bool "detached index is frozen" true
    (Index.probe ix ~lo:"a001" ~hi:"a001" 2 = [])

let test_probe_edges () =
  let st : int Store.t = Store.create () in
  let ix = Index.attach st ~extract in
  Store.write st "k" 0 500;
  check_bool "empty range (lo > hi)" true
    (Index.probe ix ~lo:"a900" ~hi:"a100" 0 = []);
  check_bool "equal bounds hit" true
    (Index.probe ix ~lo:"a500" ~hi:"a500" 0 = [ ("k", 500) ]);
  check_bool "equal bounds miss" true
    (Index.probe ix ~lo:"a501" ~hi:"a501" 0 = []);
  check_bool "future version resolves to newest le" true
    (Index.probe ix ~lo:"a500" ~hi:"a500" 9 = [ ("k", 500) ]);
  check_bool "probe below first version sees nothing" true
    (Index.probe ix ~lo:"a000" ~hi:"a999" (-1) = [])

let test_join_agreement () =
  (* hash_join output is independent of the partition count and identical
     to the nested-loop reference, including duplicate join keys and rows
     matching nothing. *)
  let build =
    List.init 30 (fun i -> (i mod 3, Printf.sprintf "b%02d" i, i * 13))
  in
  let probe =
    List.init 41 (fun i -> (i mod 4, Printf.sprintf "p%02d" i, i * 7))
  in
  let key_of (_, _, v) = extract (v mod 40) in
  let compare = compare in
  let reference =
    Join.nested_loop ~compare ~build ~probe ~build_key:key_of
      ~probe_key:key_of
  in
  check_bool "join produces matches" true (reference <> []);
  List.iter
    (fun partitions ->
      let hashed =
        Join.hash_join ~partitions ~compare ~build ~probe ~build_key:key_of
          ~probe_key:key_of
      in
      check_bool
        (Printf.sprintf "hash_join(%d) = nested_loop" partitions)
        true (hashed = reference))
    [ 1; 2; 5; 16 ];
  check_bool "empty build side" true
    (Join.hash_join ~partitions:4 ~compare ~build:[] ~probe
       ~build_key:key_of ~probe_key:key_of
    = [])

(* {1 Cluster-level behaviour} *)

let test_select_plans_agree_quiescent () =
  (* At quiescence the three plans return byte-identical rows. *)
  let db =
    with_index_cluster (fun db ->
        for n = 0 to 2 do
          Cluster.load db ~node:n
            (List.init 8 (fun i -> (Printf.sprintf "n%d-k%d" n i, (n * 100) + i)))
        done;
        ignore
          (Cluster.run_update db ~root:0
             ~ops:[ Update.Write { node = 1; key = "n1-k0"; value = 555 } ]);
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        let lo, hi = full_range in
        let ranges = List.init 3 (fun n -> (n, lo, hi)) in
        let indexed = Cluster.run_select db ~root:0 ~plan:`Index ~ranges in
        let scanned = Cluster.run_select db ~root:0 ~plan:`Full_scan ~ranges in
        let checked = Cluster.run_select db ~root:0 ~plan:`Both_check ~ranges in
        check_bool "index = full_scan" true
          (rows_of indexed = rows_of scanned);
        check_bool "both_check agrees" true
          (rows_of indexed = rows_of checked);
        check_int "all rows" 24 (List.length (rows_of indexed));
        (* Narrow predicate only returns matching attributes. *)
        let narrow =
          Cluster.run_select db ~root:2 ~plan:`Both_check
            ~ranges:[ (1, "a555", "a555") ]
        in
        check_bool "predicate filter" true
          (rows_of narrow = [ (1, "n1-k0", 555) ]))
  in
  no_msgs "quiescent invariants" (Cluster.check_quiescent_invariants db)

let test_tree_selects () =
  (* Index probes ride the subquery tree's pin: a tree plan with selects
     returns the same rows as run_select over the same partitions. *)
  let db =
    with_index_cluster (fun db ->
        for n = 0 to 2 do
          Cluster.load db ~node:n
            (List.init 6 (fun i -> (Printf.sprintf "n%d-k%d" n i, (n * 10) + i)))
        done;
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        let lo, hi = full_range in
        let plan =
          Tq.reads ~selects:[ (lo, hi) ] 0 []
            [ Tq.reads ~selects:[ (lo, hi) ] 1 [] [];
              Tq.reads ~selects:[ (lo, hi) ] 2 [] [] ]
        in
        let tree = Cluster.run_tree_query db ~plan in
        let flat =
          Cluster.run_select db ~root:0 ~plan:`Both_check
            ~ranges:(List.init 3 (fun n -> (n, lo, hi)))
        in
        check_int "same pin" flat.Qx.version tree.Qx.version;
        check_bool "same rows" true
          (List.sort compare (rows_of tree)
          = List.sort compare (rows_of flat));
        check_int "all rows" 18 (List.length (rows_of tree)))
  in
  no_msgs "quiescent invariants" (Cluster.check_quiescent_invariants db)

let test_recovery_reattaches () =
  (* Crash wipes the node; recovery replays the WAL and rebuilds the index
     over the replayed store, so post-recovery Both_check selects agree and
     the index↔base invariant holds. *)
  let db =
    with_index_cluster (fun db ->
        for n = 0 to 2 do
          Cluster.load db ~node:n
            (List.init 5 (fun i -> (Printf.sprintf "n%d-k%d" n i, n + i)))
        done;
        ignore
          (Cluster.run_update db ~root:1
             ~ops:[ Update.Write { node = 1; key = "n1-k2"; value = 77 } ]);
        Cluster.crash db ~node:1;
        Sim.Engine.sleep 10.0;
        Cluster.recover db ~node:1;
        Sim.Engine.sleep 10.0;
        ignore
          (Cluster.run_update db ~root:1
             ~ops:[ Update.Write { node = 1; key = "n1-k3"; value = 88 } ]);
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        let lo, hi = full_range in
        let r =
          Cluster.run_select db ~root:0 ~plan:`Both_check
            ~ranges:(List.init 3 (fun n -> (n, lo, hi)))
        in
        check_bool "recovered node serves its committed write" true
          (List.mem (1, "n1-k2", 77) (rows_of r)
          && List.mem (1, "n1-k3", 88) (rows_of r)))
  in
  no_msgs "quiescent invariants" (Cluster.check_quiescent_invariants db)

let test_checkpoint_reattaches () =
  (* A checkpoint swaps the node's store in from a snapshot; the index must
     follow the replacement store. *)
  let db =
    with_index_cluster (fun db ->
        Cluster.load db ~node:0
          (List.init 5 (fun i -> (Printf.sprintf "k%d" i, i)));
        ignore
          (Cluster.run_update db ~root:0
             ~ops:[ Update.Write { node = 0; key = "k0"; value = 42 } ]);
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        check_bool "checkpoint taken" true (Cluster.checkpoint db ~node:0);
        ignore
          (Cluster.run_update db ~root:0
             ~ops:[ Update.Write { node = 0; key = "k1"; value = 43 } ]);
        ignore (Cluster.advance_and_wait db ~coordinator:0);
        let lo, hi = full_range in
        let r =
          Cluster.run_select db ~root:0 ~plan:`Both_check
            ~ranges:[ (0, lo, hi) ]
        in
        check_bool "post-checkpoint writes indexed" true
          (List.mem (0, "k0", 42) (rows_of r)
          && List.mem (0, "k1", 43) (rows_of r)))
  in
  no_msgs "quiescent invariants" (Cluster.check_quiescent_invariants db)

(* {1 The equivalence oracle} *)

(* One adversarial run: concurrent single- and multi-node updates, periodic
   advancement, a nemesis (crash + partition + slow link), and [`Both_check]
   selects and joins in flight.  Any divergence between the index plan and
   the full-scan plan at the same pinned version raises [Index_mismatch];
   the index↔base invariant is probed throughout and at quiescence.  Then,
   drained, the [`Index] and [`Full_scan] join plans must return identical
   pairs at the same pin. *)
let oracle_run ~seed ~gc_renumber =
  let label = Printf.sprintf "seed %Ld, gc_renumber %b" seed gc_renumber in
  let engine = Sim.Engine.create ~seed () in
  let nodes = 3 and keys = 10 in
  (* Finite RPC timeout + advancement retransmission: mandatory whenever a
     nemesis drops messages, or blocked callers pin the run forever. *)
  let config =
    {
      Ava3.Config.default with
      gc_renumber;
      rpc_timeout = 15.0;
      advancement_retry = 25.0;
    }
  in
  let db : int Cluster.t =
    Cluster.create ~engine ~config ~index:extract ~nodes ()
  in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  for n = 0 to nodes - 1 do
    Cluster.load db ~node:n
      (List.init keys (fun i -> (Printf.sprintf "n%d-k%d" n i, (n * keys) + i)))
  done;
  let horizon = 360.0 in
  let plan =
    Net.Nemesis.random_plan ~rng ~nodes ~horizon:(horizon *. 0.7) ~crashes:1
      ~partitions:1 ~slow_links:1 ~min_duration:20.0 ~max_duration:40.0
      ~extra_latency:2.0 ()
  in
  Net.Nemesis.install ~engine (Cluster.nemesis_target db) plan;
  let mismatches = ref [] and violations = ref [] in
  let selects_ok = ref 0 and joins_ok = ref 0 in
  let random_attr_range () =
    let a = Sim.Rng.int rng 1000 and b = Sim.Rng.int rng 1000 in
    (extract (min a b), extract (max a b))
  in
  (* Updates: single-node and cross-node writes over the shared keyspace. *)
  for u = 0 to 29 do
    Sim.Engine.schedule engine
      ~delay:(Sim.Rng.float rng (horizon *. 0.85))
      (fun () ->
        let root = Sim.Rng.int rng nodes in
        let op () =
          let node = Sim.Rng.int rng nodes in
          let key = Printf.sprintf "n%d-k%d" node (Sim.Rng.int rng keys) in
          Update.Write { node; key; value = (u * 37) mod 1000 }
        in
        let ops = if u mod 3 = 0 then [ op (); op () ] else [ op () ] in
        ignore
          (Cluster.run_update_with_retry db ~root ~ops ~max_attempts:4
             ~backoff:8.0 ()))
  done;
  (* Advancement beats from the first alive node. *)
  for b = 1 to int_of_float (horizon /. 45.0) do
    Sim.Engine.schedule engine
      ~delay:(float_of_int b *. 45.0)
      (fun () ->
        let rec first_alive k =
          if k >= nodes then None
          else if Node_state.alive (Cluster.node db k) then Some k
          else first_alive (k + 1)
        in
        match first_alive 0 with
        | Some k -> ignore (Cluster.advance db ~coordinator:k)
        | None -> ())
  done;
  (* Both_check selects and joins in flight — the oracle proper.  Node_down
     and Rpc_timeout are legitimate under the nemesis; Index_mismatch is
     the conviction we must never see. *)
  for s = 0 to 11 do
    Sim.Engine.schedule engine
      ~delay:(Sim.Rng.float rng (horizon *. 0.95))
      (fun () ->
        let root = Sim.Rng.int rng nodes in
        let lo, hi = random_attr_range () in
        let ranges = List.init nodes (fun n -> (n, lo, hi)) in
        try
          if s mod 6 = 5 then (
            let blo, bhi = random_attr_range ()
            and plo, phi = random_attr_range () in
            let parts = List.init nodes Fun.id in
            ignore
              (Cluster.run_join db ~root ~plan:`Both_check
                 ~build:(parts, blo, bhi) ~probe:(parts, plo, phi));
            incr joins_ok)
          else (
            ignore (Cluster.run_select db ~root ~plan:`Both_check ~ranges);
            incr selects_ok)
        with
        | Qx.Index_mismatch { node; version; indexed; full_scan } ->
            mismatches :=
              Printf.sprintf
                "%s: index/full-scan divergence at node %d v%d (%d vs %d)"
                label node version indexed full_scan
              :: !mismatches
        | Net.Network.Node_down _ | Net.Network.Rpc_timeout _ -> ())
  done;
  (* Continuous index↔base invariant probes (check_invariants audits the
     index against the store at the query version). *)
  for p = 0 to 23 do
    Sim.Engine.schedule engine
      ~delay:(float_of_int p *. 15.0)
      (fun () -> violations := Cluster.check_invariants db @ !violations)
  done;
  Sim.Engine.run engine;
  Alcotest.(check (list string)) (label ^ ": no mismatches") [] !mismatches;
  Alcotest.(check (list string)) (label ^ ": no invariant violations") []
    !violations;
  Alcotest.(check (list string))
    (label ^ ": quiescent invariants")
    [] (Cluster.check_quiescent_invariants db);
  check_bool (label ^ ": oracle exercised selects") true (!selects_ok > 0);
  (* Join plan equality at quiescence: same pin, identical pairs. *)
  Sim.Engine.spawn engine (fun () ->
      let parts = List.init nodes Fun.id in
      let build = (parts, "a000", "a499") and probe = (parts, "a000", "a999") in
      let j_ix = Cluster.run_join db ~root:0 ~plan:`Index ~build ~probe in
      let j_fs = Cluster.run_join db ~root:0 ~plan:`Full_scan ~build ~probe in
      check_int (label ^ ": joins share the pin")
        j_ix.Qx.join.Qx.version j_fs.Qx.join.Qx.version;
      check_bool (label ^ ": join pairs identical across plans") true
        (j_ix.Qx.pairs = j_fs.Qx.pairs);
      ignore !joins_ok);
  Sim.Engine.run engine;
  no_msgs
    (label ^ ": quiescent invariants after joins")
    (Cluster.check_quiescent_invariants db)

let test_equivalence_oracle () =
  List.iter
    (fun gc_renumber ->
      for s = 1 to 10 do
        oracle_run ~seed:(Int64.of_int (100 + s)) ~gc_renumber
      done)
    [ false; true ]

let () =
  Alcotest.run "index"
    [
      ( "vindex",
        [
          Alcotest.test_case "attach bootstrap" `Quick test_attach_bootstrap;
          Alcotest.test_case "listener paths" `Quick test_listener_paths;
          Alcotest.test_case "probe edges" `Quick test_probe_edges;
          Alcotest.test_case "join agreement" `Quick test_join_agreement;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "select plans agree" `Quick
            test_select_plans_agree_quiescent;
          Alcotest.test_case "tree selects" `Quick test_tree_selects;
          Alcotest.test_case "recovery reattaches" `Quick
            test_recovery_reattaches;
          Alcotest.test_case "checkpoint reattaches" `Quick
            test_checkpoint_reattaches;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "10 seeds x both gc rules" `Quick
            test_equivalence_oracle;
        ] );
    ]
