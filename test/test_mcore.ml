(* The real-multicore backend: latch and store primitives, protocol unit
   tests on the domains backend, DES-vs-mcore conformance over many
   seeds, and conviction of the deliberately broken latch-skipping twin. *)

(* ---- Latch ------------------------------------------------------------- *)

let test_latch_mutual_exclusion () =
  (* Classic lost-update check: unprotected increments from 4 domains
     would lose updates; with the latch the count must be exact. *)
  let latch = Mcore.Latch.create () in
  let counter = ref 0 in
  let domains = 4 and iters = 20_000 in
  let body () =
    for _ = 1 to iters do
      Mcore.Latch.with_latch latch (fun () -> incr counter)
    done
  in
  let workers = Array.init domains (fun _ -> Domain.spawn body) in
  Array.iter Domain.join workers;
  Alcotest.(check int) "no increment lost" (domains * iters) !counter;
  Alcotest.(check int) "every acquisition counted" (domains * iters)
    (Mcore.Latch.acquisitions latch)

let test_latch_try_and_release () =
  let latch = Mcore.Latch.create () in
  Alcotest.(check bool) "free latch taken" true (Mcore.Latch.try_acquire latch);
  Alcotest.(check bool) "held latch refused" false
    (Mcore.Latch.try_acquire latch);
  Mcore.Latch.release latch;
  Alcotest.(check bool) "released latch taken again" true
    (Mcore.Latch.try_acquire latch);
  Mcore.Latch.release latch

let test_latch_releases_on_exception () =
  let latch = Mcore.Latch.create () in
  (try Mcore.Latch.with_latch latch (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "latch free after exception" true
    (Mcore.Latch.try_acquire latch);
  Mcore.Latch.release latch

(* ---- Mstore ------------------------------------------------------------ *)

let test_mstore_matches_vstore () =
  (* Same operation sequence against Mstore and a plain Vstore.Store:
     snapshot_items must agree (Mstore is the same store, striped). *)
  let ms : int Mcore.Mstore.t = Mcore.Mstore.create ~buckets:4 ~bound:3 () in
  let vs : int Vstore.Store.t = Vstore.Store.create ~bound:3 () in
  let ops =
    [
      `W ("a", 0, 1); `W ("b", 0, 2); `W ("c", 0, 3);
      `W ("a", 1, 10); `D ("b", 1); `W ("d", 1, 40);
      `G (0, 1);
      `W ("a", 2, 100); `W ("c", 2, 300);
      `G (1, 2);
    ]
  in
  List.iter
    (function
      | `W (k, v, x) ->
          Mcore.Mstore.write ms k v x;
          Vstore.Store.write vs k v x
      | `D (k, v) ->
          Mcore.Mstore.delete ms k v;
          Vstore.Store.delete vs k v
      | `G (collect, query) ->
          Mcore.Mstore.gc ms ~collect ~query;
          Vstore.Store.gc vs ~collect ~query)
    ops;
  Alcotest.(check bool) "snapshots agree" true
    (Mcore.Mstore.snapshot_items ms
    = Vstore.Store.snapshot_items (Vstore.Store.snapshot vs));
  Alcotest.(check (option int)) "read_le agrees"
    (Vstore.Store.read_le vs "a" 2)
    (Mcore.Mstore.read_le ms "a" 2)

let test_mstore_parallel_disjoint_writes () =
  (* Domains writing disjoint key sets: every write must land, and the
     per-item version bound stays enforced. *)
  let ms : int Mcore.Mstore.t = Mcore.Mstore.create ~buckets:8 ~bound:3 () in
  let domains = 4 and keys = 200 in
  let body d () =
    for k = 0 to keys - 1 do
      Mcore.Mstore.write ms (Printf.sprintf "d%d-k%d" d k) 0 (d * 1000 + k)
    done
  in
  let workers = Array.init domains (fun d -> Domain.spawn (body d)) in
  Array.iter Domain.join workers;
  Alcotest.(check int) "all items present" (domains * keys)
    (Mcore.Mstore.item_count ms);
  Alcotest.(check (option int)) "spot value" (Some 2042)
    (Mcore.Mstore.read_le ms "d2-k42" 5);
  Alcotest.(check bool) "latches were exercised" true
    (Mcore.Mstore.latch_acquisitions ms >= domains * keys)

(* ---- Backend unit behaviour -------------------------------------------- *)

let test_backend_initial_state () =
  let b : int Mcore.Backend.t = Mcore.Backend.create ~sites:2 () in
  let s = Mcore.Backend.site b 0 in
  Alcotest.(check int) "u" 1 (Mcore.Backend.u s);
  Alcotest.(check int) "q" 0 (Mcore.Backend.q s);
  Alcotest.(check int) "g" (-1) (Mcore.Backend.g s);
  Alcotest.(check (list string)) "fresh backend is quiescent" []
    (Mcore.Backend.check_quiescent b)

let test_backend_update_query_advance () =
  let b : int Mcore.Backend.t = Mcore.Backend.create ~sites:2 () in
  Mcore.Backend.load b ~site:0 [ ("x", 1) ];
  Mcore.Backend.load b ~site:1 [ ("y", 2) ];
  let w = Mcore.Backend.worker b in
  (* A cross-site update commits in version 1 (both sites at u = 1). *)
  (match
     Mcore.Backend.run_update w ~root:0
       ~ops:
         [
           (0, Mcore.Backend.Read "x");
           (0, Mcore.Backend.Write ("x", 10));
           (1, Mcore.Backend.Write ("y", 20));
         ]
   with
  | Mcore.Backend.Committed ci ->
      Alcotest.(check int) "commits in version 1" 1 ci.final_version;
      Alcotest.(check (list (pair string (option int))))
        "read the preload" [ ("x", Some 1) ] ci.reads
  | Mcore.Backend.Aborted _ -> Alcotest.fail "uncontended update aborted");
  (* Before advancement queries still read version 0. *)
  let r = Mcore.Backend.run_query w ~root:0 ~reads:[ (0, "x"); (1, "y") ] in
  Alcotest.(check int) "query pinned at q = 0" 0 r.q_version;
  Alcotest.(check bool) "stale values" true
    (r.values = [ (0, "x", Some 1); (1, "y", Some 2) ]);
  (* Advancement publishes version 1. *)
  (match Mcore.Backend.advance w ~coordinator:0 with
  | `Completed newu -> Alcotest.(check int) "advanced to u = 2" 2 newu
  | `Busy -> Alcotest.fail "idle advancement refused");
  let r = Mcore.Backend.run_query w ~root:1 ~reads:[ (0, "x"); (1, "y") ] in
  Alcotest.(check int) "query sees version 1" 1 r.q_version;
  Alcotest.(check bool) "fresh values" true
    (r.values = [ (0, "x", Some 10); (1, "y", Some 20) ]);
  Alcotest.(check (list string)) "quiescent afterwards" []
    (Mcore.Backend.check_quiescent b)

let test_backend_advance_initiation_rules () =
  let b : int Mcore.Backend.t = Mcore.Backend.create ~sites:1 () in
  let w = Mcore.Backend.worker b in
  (match Mcore.Backend.advance w ~coordinator:0 with
  | `Completed 2 -> ()
  | _ -> Alcotest.fail "first round should complete to u = 2");
  (* Rounds with no intervening work keep succeeding (fresh rule: the
     previous round fully drained and collected). *)
  (match Mcore.Backend.advance w ~coordinator:0 with
  | `Completed 3 -> ()
  | _ -> Alcotest.fail "second round should complete to u = 3");
  let s = Mcore.Backend.site b 0 in
  Alcotest.(check int) "u" 3 (Mcore.Backend.u s);
  Alcotest.(check int) "q" 2 (Mcore.Backend.q s);
  Alcotest.(check int) "g" 1 (Mcore.Backend.g s)

let test_backend_parallel_updates_commit_exactly_once () =
  (* Many domains updating overlapping keys: total increments to a
     read-modify-written register must equal total commits (striped
     locks + whole-txn retry make each commit atomic). *)
  let b : int Mcore.Backend.t = Mcore.Backend.create ~sites:1 () in
  Mcore.Backend.load b ~site:0 [ ("ctr", 0) ];
  let domains = 4 and iters = 200 in
  let commits = Atomic.make 0 in
  let body () =
    let w = Mcore.Backend.worker b in
    for _ = 1 to iters do
      match
        Mcore.Backend.run_update w ~root:0 ~ops:[ (0, Mcore.Backend.Read "ctr") ]
      with
      | Mcore.Backend.Committed _ -> Atomic.incr commits
      | Mcore.Backend.Aborted _ -> ()
    done
  in
  let workers = Array.init domains (fun _ -> Domain.spawn body) in
  Array.iter Domain.join workers;
  Alcotest.(check bool) "most updates commit" true
    (Atomic.get commits > domains * iters / 2);
  Alcotest.(check (list string)) "quiescent afterwards" []
    (Mcore.Backend.check_quiescent b);
  (* Merged metrics saw every commit exactly once. *)
  let m = Mcore.Backend.metrics b in
  Alcotest.(check int) "merged registries count all commits"
    (Atomic.get commits)
    (Sim.Metrics.total_commits m)

let test_backend_queries_never_block_advancement_mix () =
  (* Queries, updates and advancement racing across domains: the backend
     must come out quiescent with u = q + 1 and all counters drained. *)
  let b : int Mcore.Backend.t = Mcore.Backend.create ~sites:2 () in
  Mcore.Backend.load b ~site:0 [ ("a", 1) ];
  Mcore.Backend.load b ~site:1 [ ("b", 2) ];
  let iters = 300 in
  let body d () =
    let w = Mcore.Backend.worker b in
    for i = 1 to iters do
      if d = 0 && i mod 50 = 0 then
        ignore (Mcore.Backend.advance w ~coordinator:0)
      else if d mod 2 = 0 then
        ignore
          (Mcore.Backend.run_update w ~root:(d mod 2)
             ~ops:[ (0, Mcore.Backend.Write ("a", i)); (1, Mcore.Backend.Read "b") ])
      else
        ignore (Mcore.Backend.run_query w ~root:1 ~reads:[ (0, "a"); (1, "b") ])
    done
  in
  let workers = Array.init 4 (fun d -> Domain.spawn (body d)) in
  Array.iter Domain.join workers;
  Alcotest.(check (list string)) "quiescent after the storm" []
    (Mcore.Backend.check_quiescent b)

(* ---- Conformance: DES as the oracle ------------------------------------ *)

let conformance_seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_conformance_all_seeds () =
  List.iter
    (fun seed ->
      (* Odd seeds exercise the renumbering GC rule, even seeds the
         in-place rule — both store configurations must conform. *)
      let gc_renumber = seed mod 2 = 1 in
      match Mcore.Conform.check ~gc_renumber ~seed () with
      | Ok stats ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d does real work" seed)
            true
            (stats.Mcore.Conform.commits > 0 && stats.Mcore.Conform.queries > 0)
      | Error problems ->
          Alcotest.fail
            (Printf.sprintf "seed %d diverged:\n  %s" seed
               (String.concat "\n  " problems)))
    conformance_seeds

let test_conformance_sequential_cannot_convict_twin () =
  (* The latch-skipping twin is CORRECT on every deterministic schedule:
     sequential conformance passing against it is part of its spec (the
     injected bug is a pure race). *)
  match Mcore.Conform.check ~skip_query_latch:true ~seed:3 () with
  | Ok _ -> ()
  | Error problems ->
      Alcotest.fail
        ("twin diverged sequentially (bug is not a pure race):\n"
        ^ String.concat "\n" problems)

let test_convict_racy_twin () =
  (* Under real parallelism the twin's naked counter bump loses
     increments; the harness must catch it red-handed. *)
  let evidence = Mcore.Conform.convict_racy_twin ~domains:4 () in
  if evidence = [] then
    Alcotest.fail "divergence harness failed to convict the latch-skipping twin"

let test_workload_generation_deterministic () =
  let w1 = Mcore.Conform.generate ~seed:42 () in
  let w2 = Mcore.Conform.generate ~seed:42 () in
  Alcotest.(check bool) "same seed, same workload" true (w1 = w2);
  let w3 = Mcore.Conform.generate ~seed:43 () in
  Alcotest.(check bool) "different seed, different workload" true (w1 <> w3)

(* ---- Metrics merge across domains --------------------------------------- *)

let test_per_domain_metrics_merge () =
  let b : int Mcore.Backend.t = Mcore.Backend.create ~sites:1 () in
  Mcore.Backend.load b ~site:0 [ ("k", 0) ];
  let per_domain = 50 in
  let body () =
    let w = Mcore.Backend.worker b in
    for _ = 1 to per_domain do
      ignore (Mcore.Backend.run_query w ~root:0 ~reads:[ (0, "k") ])
    done
  in
  let workers = Array.init 3 (fun _ -> Domain.spawn body) in
  Array.iter Domain.join workers;
  let m = Mcore.Backend.metrics b in
  Alcotest.(check int) "queries from all domains merged" (3 * per_domain)
    (Sim.Metrics.total_queries m)

let () =
  Alcotest.run "mcore"
    [
      ( "latch",
        [
          Alcotest.test_case "mutual exclusion under domains" `Quick
            test_latch_mutual_exclusion;
          Alcotest.test_case "try_acquire and release" `Quick
            test_latch_try_and_release;
          Alcotest.test_case "with_latch releases on exception" `Quick
            test_latch_releases_on_exception;
        ] );
      ( "mstore",
        [
          Alcotest.test_case "agrees with Vstore on one sequence" `Quick
            test_mstore_matches_vstore;
          Alcotest.test_case "parallel disjoint writes" `Quick
            test_mstore_parallel_disjoint_writes;
        ] );
      ( "backend",
        [
          Alcotest.test_case "initial state" `Quick test_backend_initial_state;
          Alcotest.test_case "update, query, advance" `Quick
            test_backend_update_query_advance;
          Alcotest.test_case "advancement initiation rules" `Quick
            test_backend_advance_initiation_rules;
          Alcotest.test_case "parallel updates commit exactly once" `Quick
            test_backend_parallel_updates_commit_exactly_once;
          Alcotest.test_case "mixed storm ends quiescent" `Quick
            test_backend_queries_never_block_advancement_mix;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "workload generation deterministic" `Quick
            test_workload_generation_deterministic;
          Alcotest.test_case "DES and mcore agree on 10 seeds" `Slow
            test_conformance_all_seeds;
          Alcotest.test_case "sequential schedules cannot convict the twin"
            `Quick test_conformance_sequential_cannot_convict_twin;
          Alcotest.test_case "parallel harness convicts the twin" `Slow
            test_convict_racy_twin;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "per-domain registries merge" `Quick
            test_per_domain_metrics_merge;
        ] );
    ]
