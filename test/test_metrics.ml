(* Sim.Metrics registry: per-node counters, log2-bucketed histograms,
   immutable snapshots and their JSON rendering — plus the Dbsim.Report
   sink the experiment drivers record into. *)

module M = Sim.Metrics

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

let test_counters_and_totals () =
  let m = M.create ~nodes:3 in
  check_int "node count" 3 (M.node_count m);
  M.record_commit m ~node:0;
  M.record_commit m ~node:2;
  M.record_abort m ~node:1 `Deadlock;
  M.record_abort m ~node:1 (`Rpc_timeout 2);
  M.record_abort m ~node:0 (`Node_down 1);
  M.record_abort m ~node:2 `Version_mismatch;
  M.record_root_down m ~node:0;
  M.record_root_down m ~node:0;
  M.record_query m ~node:2;
  M.record_mtf m ~node:0 ~at_commit:false;
  M.record_mtf m ~node:0 ~at_commit:true;
  M.record_version_mismatch m ~node:1;
  M.record_advancement m ~node:1;
  M.record_rpc_call m ~node:0;
  M.record_rpc_timeout m ~node:0;
  check_int "commits" 2 (M.total_commits m);
  check_int "aborts exclude root-down rejections" 4 (M.total_aborts m);
  check_int "root-down rejections" 2 (M.total_root_down m);
  check_int "queries" 1 (M.total_queries m);
  check_int "mtf at data access" 1 (M.total_mtf_data_access m);
  check_int "mtf at commit" 1 (M.total_mtf_commit_time m);
  check_int "version mismatches" 1 (M.total_version_mismatches m);
  check_int "advancements" 1 (M.total_advancements m);
  check_int "rpc calls" 1 (M.total_rpc_calls m);
  check_int "rpc timeouts" 1 (M.total_rpc_timeouts m);
  let n1 = List.nth (M.snapshot m) 1 in
  check_int "node tag" 1 n1.M.node;
  check_int "n1 deadlock aborts" 1 n1.M.aborts_deadlock;
  check_int "n1 timeout aborts" 1 n1.M.aborts_rpc_timeout;
  check_int "n1 aborts_total" 2 (M.aborts_total n1)

let test_bad_node_rejected () =
  let m = M.create ~nodes:2 in
  let rejected f = match f () with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "negative node" true (rejected (fun () -> M.record_commit m ~node:(-1)));
  check_bool "node beyond range" true (rejected (fun () -> M.record_query m ~node:2));
  check_bool "empty registry" true
    (match M.create ~nodes:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Bucket 0 holds exact zeros; a value v with frexp exponent e lands in
   the bucket labelled le = 2^e; the exponent clamps at 25, but true
   extremes survive in min/max. *)
let test_histogram_buckets () =
  let m = M.create ~nodes:1 in
  M.record_rpc_latency m ~node:0 0.0;
  M.record_rpc_latency m ~node:0 0.75;
  M.record_rpc_latency m ~node:0 3.0;
  M.record_rpc_latency m ~node:0 3.5;
  M.record_rpc_latency m ~node:0 1e12;
  let h = (List.hd (M.snapshot m)).M.rpc_latency in
  check_int "count" 5 h.M.count;
  check_float "sum" (0.0 +. 0.75 +. 3.0 +. 3.5 +. 1e12) h.M.sum;
  check_float "min" 0.0 h.M.min;
  check_float "max survives clamping" 1e12 h.M.max;
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets: zeros, (1/2,1], (2,4], clamp top"
    [ (0.0, 1); (1.0, 1); (4.0, 2); (33554432.0, 1) ]
    h.M.buckets

(* Regression: negative samples used to be filed into bucket 0, which is
   reserved for exact zeros.  They must land in the [neg] underflow tally
   instead — while still counting toward count/sum/min/max. *)
let test_negative_underflow () =
  let m = M.create ~nodes:1 in
  M.record_rpc_latency m ~node:0 (-0.5);
  M.record_rpc_latency m ~node:0 (-2.0);
  M.record_rpc_latency m ~node:0 0.0;
  M.record_rpc_latency m ~node:0 0.75;
  let h = (List.hd (M.snapshot m)).M.rpc_latency in
  check_int "count includes negatives" 4 h.M.count;
  check_int "two underflow samples" 2 h.M.neg;
  check_float "sum includes negatives" (-1.75) h.M.sum;
  check_float "min is the true extreme" (-2.0) h.M.min;
  Alcotest.(check (list (pair (float 0.0) int)))
    "exact-zero bucket holds only the exact zero"
    [ (0.0, 1); (1.0, 1) ]
    h.M.buckets;
  (* And the underflow tally reaches the JSON dump. *)
  let json = M.to_json (M.snapshot m) in
  let contains needle =
    let n = String.length needle and len = String.length json in
    let rec go i = i + n <= len && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "neg in JSON" true (contains {|"neg":2|})

let test_merge_into () =
  let a = M.create ~nodes:2 and b = M.create ~nodes:2 in
  M.record_commit a ~node:0;
  M.record_commit b ~node:0;
  M.record_commit b ~node:1;
  M.record_abort b ~node:1 `Deadlock;
  M.record_rpc_latency a ~node:0 1.5;
  M.record_rpc_latency b ~node:0 3.0;
  M.record_rpc_latency b ~node:0 (-1.0);
  M.record_disk_force b ~node:1 ~records:7;
  M.merge_into ~into:a b;
  check_int "commits summed" 3 (M.total_commits a);
  check_int "aborts summed" 1 (M.total_aborts a);
  check_int "records forced" 7 (M.total_records_forced a);
  let h = (List.hd (M.snapshot a)).M.rpc_latency in
  check_int "hist count" 3 h.M.count;
  check_int "hist neg" 1 h.M.neg;
  check_float "hist min" (-1.0) h.M.min;
  check_float "hist max" 3.0 h.M.max;
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket slots added" [ (2.0, 1); (4.0, 1) ] h.M.buckets;
  (* Source untouched; mismatched node counts rejected. *)
  check_int "src unchanged" 2 (M.total_commits b);
  check_bool "node-count mismatch rejected" true
    (match M.merge_into ~into:a (M.create ~nodes:3) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_empty_histogram () =
  let h = (List.hd (M.snapshot (M.create ~nodes:1))).M.rpc_latency in
  check_int "count" 0 h.M.count;
  check_float "min is 0 when empty" 0.0 h.M.min;
  check_float "max is 0 when empty" 0.0 h.M.max;
  check_bool "no buckets" true (h.M.buckets = [])

let test_snapshot_immutable () =
  let m = M.create ~nodes:1 in
  M.record_commit m ~node:0;
  let snap = M.snapshot m in
  M.record_commit m ~node:0;
  M.record_rpc_latency m ~node:0 1.5;
  check_int "old snapshot unchanged" 1 (List.hd snap).M.commits;
  check_int "old histogram unchanged" 0 (List.hd snap).M.rpc_latency.M.count;
  check_int "registry moved on" 2 (M.total_commits m)

let test_json () =
  let m = M.create ~nodes:2 in
  M.record_commit m ~node:0;
  M.record_abort m ~node:0 `Deadlock;
  M.record_phase1_duration m ~node:1 3.0;
  let json = M.to_json (M.snapshot m) in
  let contains needle =
    let n = String.length needle and len = String.length json in
    let rec go i = i + n <= len && (String.sub json i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "two node objects" true (contains {|"node":1|});
  check_bool "commit counted" true (contains {|"commits":1|});
  check_bool "abort breakdown" true (contains {|"deadlock":1|});
  check_bool "abort total" true (contains {|"total":1|});
  check_bool "phase1 bucket le=4" true (contains {|"buckets":[{"le":4,"count":1}]|});
  check_bool "rpc section" true (contains {|"rpc":{"calls":0,"timeouts":0,"latency":|});
  (* No inf/nan can leak into the JSON: empty histograms render 0. *)
  check_bool "no inf" true (not (contains "inf"));
  check_bool "no nan" true (not (contains "nan"))

(* The experiment-side sink: records from any order come back sorted and
   render as one JSON array. *)
let test_report_sink () =
  Dbsim.Report.clear_metrics ();
  let m = M.create ~nodes:1 in
  M.record_commit m ~node:0;
  let snap = M.snapshot m in
  Dbsim.Report.record_metrics ~experiment:"E9" ~label:"nodes=2" snap;
  Dbsim.Report.record_metrics ~experiment:"E3" ~label:"b" snap;
  Dbsim.Report.record_metrics ~experiment:"E3" ~label:"a" snap;
  let records = Dbsim.Report.metrics_records () in
  Alcotest.(check (list (pair string string)))
    "sorted by experiment then label"
    [ ("E3", "a"); ("E3", "b"); ("E9", "nodes=2") ]
    (List.map (fun r -> (r.Dbsim.Report.experiment, r.Dbsim.Report.label)) records);
  let json = Dbsim.Report.metrics_to_json records in
  let prefix = {|[{"experiment":"E3","label":"a","nodes":|} in
  check_string "array shape" prefix (String.sub json 0 (String.length prefix));
  Dbsim.Report.clear_metrics ();
  check_bool "cleared" true (Dbsim.Report.metrics_records () = []);
  check_string "empty dump" "[]" (Dbsim.Report.metrics_to_json [])

let () =
  Alcotest.run "metrics"
    [
      ( "registry",
        [
          Alcotest.test_case "counters and totals" `Quick test_counters_and_totals;
          Alcotest.test_case "bad node rejected" `Quick test_bad_node_rejected;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "log2 buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "negative underflow" `Quick test_negative_underflow;
          Alcotest.test_case "merge registries" `Quick test_merge_into;
          Alcotest.test_case "empty histogram" `Quick test_empty_histogram;
          Alcotest.test_case "snapshot immutable" `Quick test_snapshot_immutable;
        ] );
      ( "json",
        [
          Alcotest.test_case "node rendering" `Quick test_json;
          Alcotest.test_case "report sink" `Quick test_report_sink;
        ] );
    ]
