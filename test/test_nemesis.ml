(* Nemesis fault-injection tests: deterministic plans, crash-recovery of
   participants and coordinators mid-advancement (WAL replay, §3.2
   stalled-round re-initiation), and a full chaos run with continuous
   invariant probes. *)

module Cluster = Ava3.Cluster
module Node_state = Ava3.Node_state
module Update = Ava3.Update_exec
module Nemesis = Net.Nemesis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fault_config =
  { Ava3.Config.default with rpc_timeout = 15.0; advancement_retry = 25.0 }

(* {1 Plans} *)

let test_plan_deterministic () =
  let draw seed =
    let rng = Sim.Rng.create seed in
    Nemesis.random_plan ~rng ~nodes:4 ~horizon:500.0 ~crashes:3 ~partitions:2
      ~slow_links:1 ()
  in
  Alcotest.(check (list string))
    "same seed, same plan"
    (Nemesis.describe (draw 11L))
    (Nemesis.describe (draw 11L));
  check_bool "different seed, different plan" false
    (Nemesis.describe (draw 11L) = Nemesis.describe (draw 12L))

let test_plan_crashes_disjoint () =
  let rng = Sim.Rng.create 5L in
  let plan =
    Nemesis.random_plan ~rng ~nodes:3 ~horizon:600.0 ~crashes:4 ~partitions:0
      ~slow_links:0 ()
  in
  let windows =
    List.filter_map
      (function
        | Nemesis.Crash { at; duration; _ } -> Some (at, at +. duration)
        | _ -> None)
      plan
  in
  check_bool "got crash windows" true (List.length windows >= 2);
  let rec pairwise = function
    | [] | [ _ ] -> true
    | (_, e1) :: ((s2, _) :: _ as rest) -> e1 <= s2 && pairwise rest
  in
  let sorted = List.sort compare windows in
  check_bool "crash windows disjoint" true (pairwise sorted);
  List.iter
    (fun (_, e) -> check_bool "heals before horizon" true (e <= 600.0))
    sorted

let test_plan_validation () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  let target = Nemesis.network_target net in
  let bad plan =
    match Nemesis.install ~engine:e target plan with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "unknown node rejected" true
    (bad [ Nemesis.Crash { node = 7; at = 1.0; duration = 1.0 } ]);
  check_bool "self-partition rejected" true
    (bad [ Nemesis.Partition { a = 1; b = 1; at = 1.0; duration = 1.0 } ]);
  check_bool "zero duration rejected" true
    (bad [ Nemesis.Crash { node = 0; at = 1.0; duration = 0.0 } ])

let test_network_target_applies_faults () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:3 () in
  Nemesis.install ~engine:e (Nemesis.network_target net)
    [
      Nemesis.Crash { node = 1; at = 10.0; duration = 20.0 };
      Nemesis.Partition { a = 0; b = 2; at = 5.0; duration = 10.0 };
    ];
  Sim.Engine.run ~until:12.0 e;
  check_bool "node down inside window" true (Net.Network.is_down net ~node:1);
  check_bool "link cut inside window" true
    (Net.Network.link_is_down net ~src:0 ~dst:2);
  Sim.Engine.run ~until:100.0 e;
  check_bool "node recovered" false (Net.Network.is_down net ~node:1);
  check_bool "link healed" false (Net.Network.link_is_down net ~src:0 ~dst:2)

(* {1 Crash-recovery mid-advancement} *)

(* Kill a participant mid-round — after it acknowledged Phase 1 but before
   advance-q reaches it.  Volatile state is lost; on recovery the WAL
   replay restores u and committed data, and the coordinator's
   retransmission completes the round.  [Advancement.await_completion]
   must converge and the §6.2 invariants must hold at every probe. *)
let test_participant_crash_mid_advancement () =
  let engine = Sim.Engine.create ~seed:3L () in
  let db : int Cluster.t =
    Cluster.create ~engine ~config:fault_config ~nodes:3 ()
  in
  for n = 0 to 2 do
    Cluster.load db ~node:n [ (Printf.sprintf "k%d" n, n) ]
  done;
  let violations = ref [] in
  let probe db = violations := Cluster.check_invariants db @ !violations in
  Sim.Engine.spawn engine (fun () ->
      (* Commit something remote first, so node 2's WAL replay has real
         work to redo. *)
      (match
         Cluster.run_update db ~root:0
           ~ops:[ Update.Write { node = 2; key = "k2"; value = 99 } ]
       with
      | Update.Committed _ -> ()
      | Update.Aborted _ | Update.Root_down _ ->
          Alcotest.fail "setup commit aborted");
      (match Cluster.advance db ~coordinator:0 with
      | `Started newu -> check_int "round number" 2 newu
      | `Busy -> Alcotest.fail "advance refused");
      (* With Constant 1.0 latency node 2 acks Phase 1 at +2.0 and would
         see advance-q at +3.0: crash in between. *)
      Sim.Engine.sleep 2.5;
      Cluster.crash db ~node:2;
      probe db;
      Sim.Engine.sleep 40.0;
      probe db;
      check_bool "round stalls while participant down" true
        (Cluster.advancement_in_progress db);
      Cluster.recover db ~node:2;
      probe db;
      Ava3.Advancement.await_completion (Cluster.state db) ~newu:2;
      probe db);
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "no invariant violations" [] !violations;
  for i = 0 to 2 do
    let nd = Cluster.node db i in
    check_int (Printf.sprintf "node%d u" i) 2 (Node_state.u nd);
    check_int (Printf.sprintf "node%d q" i) 1 (Node_state.q nd)
  done;
  (* The committed write survived node 2's crash via WAL replay. *)
  let store2 = Node_state.store (Cluster.node db 2) in
  Alcotest.(check (option int))
    "committed data survived replay" (Some 99)
    (Vstore.Store.read_le store2 "k2" 9)

(* The coordinator crashes before collecting Phase-1 acks: its volatile
   round state is gone and the round stalls with u = q + 2 everywhere.
   A surviving node's [initiate] takes the §3.2 stalled-round path and
   re-runs the round idempotently. *)
let test_coordinator_crash_recovered_by_reinitiation () =
  let engine = Sim.Engine.create ~seed:7L () in
  let db : int Cluster.t =
    Cluster.create ~engine ~config:fault_config ~nodes:3 ()
  in
  Cluster.load db ~node:0 [ ("x", 1) ];
  let violations = ref [] in
  Sim.Engine.spawn engine (fun () ->
      (match Cluster.advance db ~coordinator:1 with
      | `Started _ -> ()
      | `Busy -> Alcotest.fail "advance refused");
      (* advance-u lands everywhere at +1.0; acks arrive at +2.0.  Crash
         the coordinator in between: all nodes have u = 2, q = 0, and no
         coordinator exists to finish the round. *)
      Sim.Engine.sleep 1.5;
      Cluster.crash db ~node:1;
      violations := Cluster.check_invariants db @ !violations;
      Sim.Engine.sleep 30.0;
      Cluster.recover db ~node:1;
      violations := Cluster.check_invariants db @ !violations;
      Sim.Engine.sleep 5.0;
      (* u = q + 2 locally: initiate re-runs the stalled round. *)
      (match Cluster.advance db ~coordinator:0 with
      | `Started newu -> check_int "re-initiated same round" 2 newu
      | `Busy -> Alcotest.fail "re-initiation refused");
      Ava3.Advancement.await_completion (Cluster.state db) ~newu:2;
      violations := Cluster.check_invariants db @ !violations);
  Sim.Engine.run engine;
  Alcotest.(check (list string)) "no invariant violations" [] !violations;
  for i = 0 to 2 do
    let nd = Cluster.node db i in
    check_int (Printf.sprintf "node%d u" i) 2 (Node_state.u nd);
    check_int (Printf.sprintf "node%d q" i) 1 (Node_state.q nd)
  done

(* An update racing a partition times out and aborts; after the heal the
   same operations commit. *)
let test_update_times_out_then_succeeds_after_heal () =
  let engine = Sim.Engine.create ~seed:9L () in
  let db : int Cluster.t =
    Cluster.create ~engine ~config:fault_config ~nodes:2 ()
  in
  Cluster.load db ~node:1 [ ("y", 1) ];
  let net = Cluster.network db in
  Net.Network.set_link_down net ~src:0 ~dst:1 true;
  let first = ref None and second = ref None in
  Sim.Engine.spawn engine (fun () ->
      first :=
        Some
          (Cluster.run_update db ~root:0
             ~ops:[ Update.Write { node = 1; key = "y"; value = 2 } ]);
      Net.Network.set_link_down net ~src:0 ~dst:1 false;
      second :=
        Some
          (Cluster.run_update db ~root:0
             ~ops:[ Update.Write { node = 1; key = "y"; value = 2 } ]));
  Sim.Engine.run engine;
  (match !first with
  | Some (Update.Aborted { reason = `Rpc_timeout 1; _ }) -> ()
  | _ -> Alcotest.fail "expected Rpc_timeout abort across the partition");
  (match !second with
  | Some (Update.Committed _) -> ()
  | _ -> Alcotest.fail "expected commit after heal");
  Alcotest.(check (list string))
    "invariants hold" [] (Cluster.check_invariants db)

(* {1 Full chaos run} *)

(* Crash + recover + partition + slow link under a mixed workload: the run
   drains (the engine would raise [Deadlocked] on a livelock), advancement
   completes, invariants hold at every probe, and the whole run is a pure
   function of the seed. *)
let chaos_fingerprint seed =
  let engine = Sim.Engine.create ~seed () in
  let nodes = 3 in
  let db : int Cluster.t =
    Cluster.create ~engine ~config:fault_config ~nodes ()
  in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  for n = 0 to nodes - 1 do
    Cluster.load db ~node:n
      (List.init 8 (fun i -> (Printf.sprintf "n%d-k%d" n i, i)))
  done;
  let horizon = 400.0 in
  let plan =
    Nemesis.random_plan ~rng ~nodes ~horizon:(horizon *. 0.8) ~crashes:2
      ~partitions:1 ~slow_links:1 ~min_duration:25.0 ~max_duration:50.0
      ~extra_latency:3.0 ()
  in
  check_bool "plan exercises crash and partition" true
    (List.exists (function Nemesis.Crash _ -> true | _ -> false) plan
    && List.exists (function Nemesis.Partition _ -> true | _ -> false) plan);
  Nemesis.install ~engine (Cluster.nemesis_target db) plan;
  let commits = ref 0 and aborts = ref 0 in
  for u = 0 to 39 do
    Sim.Engine.schedule engine ~delay:(float_of_int u *. 10.0) (fun () ->
        let root = Sim.Rng.int rng nodes in
        let n = Sim.Rng.int rng nodes in
        let key = Printf.sprintf "n%d-k%d" n (Sim.Rng.int rng 8) in
        match
          Cluster.run_update_with_retry db ~root
            ~ops:[ Update.Write { node = n; key; value = u } ]
            ~max_attempts:4 ~backoff:10.0 ()
        with
        | Update.Committed _, _ -> incr commits
        | (Update.Aborted _ | Update.Root_down _), _ -> incr aborts)
  done;
  (* Advancement beats from the first alive node. *)
  for b = 1 to int_of_float (horizon /. 40.0) do
    Sim.Engine.schedule engine ~delay:(float_of_int b *. 40.0) (fun () ->
        let rec first_alive k =
          if k >= nodes then None
          else if Node_state.alive (Cluster.node db k) then Some k
          else first_alive (k + 1)
        in
        match first_alive 0 with
        | Some k -> ignore (Cluster.advance db ~coordinator:k)
        | None -> ())
  done;
  (* Continuous invariant probes. *)
  let violations = ref [] in
  for p = 0 to 39 do
    Sim.Engine.schedule engine ~delay:(float_of_int p *. 12.0) (fun () ->
        violations := Cluster.check_invariants db @ !violations)
  done;
  Sim.Engine.run engine;
  violations := Cluster.check_invariants db @ !violations;
  Alcotest.(check (list string)) "no invariant violations" [] !violations;
  check_bool "made progress under faults" true (!commits > 10);
  check_bool "advancement completed under faults" true
    ((Cluster.stats db).Cluster.advancements >= 2);
  (* Fingerprint: every headline counter plus the final version vector. *)
  let s = Cluster.stats db in
  Printf.sprintf "c=%d a=%d adv=%d msg=%d vv=%s" s.Cluster.commits
    s.Cluster.aborts s.Cluster.advancements s.Cluster.messages
    (String.concat ","
       (List.init nodes (fun i ->
            let nd = Cluster.node db i in
            Printf.sprintf "%d:%d:%d" (Node_state.u nd) (Node_state.q nd)
              (Node_state.g nd))))

let test_chaos_run_deterministic () =
  let f1 = chaos_fingerprint 21L in
  let f2 = chaos_fingerprint 21L in
  Alcotest.(check string) "same seed, same run" f1 f2

let () =
  Alcotest.run "nemesis"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "crashes disjoint" `Quick
            test_plan_crashes_disjoint;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "network target" `Quick
            test_network_target_applies_faults;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "participant crash mid-advancement" `Quick
            test_participant_crash_mid_advancement;
          Alcotest.test_case "coordinator crash re-initiated" `Quick
            test_coordinator_crash_recovered_by_reinitiation;
          Alcotest.test_case "timeout then heal" `Quick
            test_update_times_out_then_succeeds_after_heal;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "deterministic run" `Quick
            test_chaos_run_deterministic;
        ] );
    ]
