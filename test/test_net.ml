(* Tests for the simulated network: latency models, per-link FIFO delivery,
   RPC exception propagation, and node-down behaviour. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_latency_models () =
  let rng = Sim.Rng.create 3L in
  for _ = 1 to 500 do
    check_float "constant" 2.5 (Net.Latency.sample (Net.Latency.Constant 2.5) rng);
    let u = Net.Latency.sample (Net.Latency.Uniform { lo = 1.0; hi = 3.0 }) rng in
    check_bool "uniform in range" true (u >= 1.0 && u <= 3.0);
    let e =
      Net.Latency.sample (Net.Latency.Exponential { mean = 5.0; floor = 1.0 }) rng
    in
    check_bool "exponential above floor" true (e >= 1.0)
  done;
  check_float "uniform mean" 2.0 (Net.Latency.mean (Net.Latency.Uniform { lo = 1.0; hi = 3.0 }))

let test_send_delivers () =
  let e = Sim.Engine.create () in
  let net : string Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 3.0) ()
  in
  let received = ref [] in
  Net.Network.set_handler net ~node:1 (fun ~src msg ->
      received := (src, msg, Sim.Engine.now e) :: !received);
  Net.Network.set_handler net ~node:0 (fun ~src:_ _ -> ());
  Net.Network.send net ~src:0 ~dst:1 "hello";
  Sim.Engine.run e;
  match !received with
  | [ (0, "hello", t) ] -> check_float "latency applied" 3.0 t
  | _ -> Alcotest.fail "message not delivered exactly once"

let test_fifo_per_link () =
  (* Even with highly variable latency, two sends on the same link arrive
     in order. *)
  let e = Sim.Engine.create ~seed:9L () in
  let net : int Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2
      ~latency:(Net.Latency.Uniform { lo = 0.1; hi = 10.0 })
      ()
  in
  let received = ref [] in
  Net.Network.set_handler net ~node:1 (fun ~src:_ msg ->
      received := msg :: !received);
  Net.Network.set_handler net ~node:0 (fun ~src:_ _ -> ());
  for i = 1 to 50 do
    Net.Network.send net ~src:0 ~dst:1 i
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int)) "in order" (List.init 50 (fun i -> i + 1))
    (List.rev !received)

let test_self_latency_zero () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:1 ~latency:(Net.Latency.Constant 5.0) ()
  in
  let at = ref nan in
  Net.Network.set_handler net ~node:0 (fun ~src:_ () -> at := Sim.Engine.now e);
  Net.Network.send net ~src:0 ~dst:0 ();
  Sim.Engine.run e;
  check_float "self delivery immediate" 0.0 !at

let test_broadcast () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:4 () in
  let hits = ref 0 in
  for n = 0 to 3 do
    Net.Network.set_handler net ~node:n (fun ~src:_ () -> incr hits)
  done;
  Net.Network.broadcast net ~src:2 ();
  Sim.Engine.run e;
  check_int "all nodes including self" 4 !hits;
  check_int "counted" 4 (Net.Network.messages_sent net)

let test_call_roundtrip () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 2.0) ()
  in
  let result = ref 0 and finished = ref nan in
  Sim.Engine.spawn e (fun () ->
      result := Net.Network.call net ~src:0 ~dst:1 (fun () -> 21 * 2);
      finished := Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "result returned" 42 !result;
  check_float "two latencies" 4.0 !finished

exception Boom

let test_call_propagates_exception () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  let caught = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> raise Boom))
      with Boom -> caught := true);
  Sim.Engine.run e;
  check_bool "exception surfaced at caller" true !caught

let test_down_node_drops () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  let hits = ref 0 in
  Net.Network.set_handler net ~node:1 (fun ~src:_ () -> incr hits);
  Net.Network.set_down net ~node:1 true;
  Net.Network.send net ~src:0 ~dst:1 ();
  Sim.Engine.run e;
  check_int "dropped" 0 !hits;
  check_int "counted as dropped" 1 (Net.Network.messages_dropped net);
  (* Recovery: traffic flows again. *)
  Net.Network.set_down net ~node:1 false;
  Net.Network.send net ~src:0 ~dst:1 ();
  Sim.Engine.run e;
  check_int "delivered after recovery" 1 !hits

let test_call_to_down_node () =
  (* No oracle: the caller learns about the dead destination only through
     the timeout, after [timeout] simulated seconds. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  Net.Network.set_down net ~node:1 true;
  let raised = ref nan in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call ~timeout:7.0 net ~src:0 ~dst:1 (fun () -> ()))
      with Net.Network.Rpc_timeout 1 -> raised := Sim.Engine.now e);
  Sim.Engine.run e;
  check_float "Rpc_timeout after the full timeout" 7.0 !raised;
  check_int "lost request counted" 1 (Net.Network.messages_dropped net)

let test_call_node_dies_mid_flight () =
  (* The destination goes down after the request is sent but before it is
     processed: the request is lost, the thunk never runs, and the caller
     gets Rpc_timeout, not a hang. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 5.0)
      ~call_timeout:20.0 ()
  in
  let raised = ref false and ran = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ran := true))
      with Net.Network.Rpc_timeout 1 -> raised := true);
  Sim.Engine.schedule e ~delay:1.0 (fun () -> Net.Network.set_down net ~node:1 true);
  Sim.Engine.run e;
  check_bool "mid-flight crash surfaces as timeout" true !raised;
  check_bool "thunk never ran" false !ran

let test_call_src_down_at_send () =
  (* Regression: [call] used to skip the [down.(src)] check that plain
     [send] performs, letting a crashed node originate RPCs for free. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  Net.Network.set_down net ~node:0 true;
  let raised = ref false and ran = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ran := true))
      with Net.Network.Node_down 0 -> raised := true);
  Sim.Engine.run e;
  check_bool "Node_down src raised" true !raised;
  check_bool "thunk never ran" false !ran;
  check_int "dropped leg counted" 1 (Net.Network.messages_dropped net)

let test_call_caller_crashes_before_reply () =
  (* Regression: the scheduled reply used to resume the caller even when
     its node crashed between request and reply.  Now the reply is dropped
     — with an infinite timeout the zombie caller never resumes. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 5.0) ()
  in
  let resumed = ref false and ran = ref false in
  Sim.Engine.spawn e (fun () ->
      ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ran := true));
      resumed := true);
  (* Crash the caller while the request (t in [0,5]) or reply (t in [5,10])
     is in flight; the thunk itself runs at t=5. *)
  Sim.Engine.schedule e ~delay:6.0 (fun () -> Net.Network.set_down net ~node:0 true);
  Sim.Engine.run e;
  check_bool "thunk ran at destination" true !ran;
  check_bool "crashed caller never resumed" false !resumed;
  check_int "dropped reply counted" 1 (Net.Network.messages_dropped net)

let test_call_timeout_resumes_crashed_caller () =
  (* A finite timeout fires even when the caller's node is down, so the
     suspended process can unwind (release locks, abort 2PC) — but the
     successful result itself is lost. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 5.0) ()
  in
  let outcome = ref `Pending in
  Sim.Engine.spawn e (fun () ->
      match Net.Network.call ~timeout:30.0 net ~src:0 ~dst:1 (fun () -> 7) with
      | _ -> outcome := `Replied
      | exception Net.Network.Rpc_timeout _ -> outcome := `Timed_out);
  Sim.Engine.schedule e ~delay:6.0 (fun () -> Net.Network.set_down net ~node:0 true);
  Sim.Engine.run e;
  check_bool "zombie caller unwound via timeout" true (!outcome = `Timed_out)

let test_call_slow_link_extra_latency () =
  (* Nemesis latency injection: extra one-way delay stretches the
     round-trip; clearing it restores normal speed. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 1.0) ()
  in
  Net.Network.set_link_extra net ~src:0 ~dst:1 10.0;
  let finished = ref nan in
  Sim.Engine.spawn e (fun () ->
      ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ()));
      finished := Sim.Engine.now e);
  Sim.Engine.run e;
  check_float "request slowed, reply normal" 12.0 !finished;
  Net.Network.set_link_extra net ~src:0 ~dst:1 0.0;
  Sim.Engine.spawn e (fun () ->
      let t0 = Sim.Engine.now e in
      ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ()));
      finished := Sim.Engine.now e -. t0);
  Sim.Engine.run e;
  check_float "healed link back to normal" 2.0 !finished

let test_link_partition () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:2 () in
  let hits = ref 0 in
  Net.Network.set_handler net ~node:1 (fun ~src:_ () -> incr hits);
  Net.Network.set_link_down net ~src:0 ~dst:1 true;
  Net.Network.send net ~src:0 ~dst:1 ();
  Sim.Engine.run e;
  check_int "dropped on partitioned link" 0 !hits;
  check_bool "reported down" true (Net.Network.link_is_down net ~src:0 ~dst:1);
  (* The reverse direction still works. *)
  Net.Network.set_handler net ~node:0 (fun ~src:_ () -> incr hits);
  Net.Network.send net ~src:1 ~dst:0 ();
  Sim.Engine.run e;
  check_int "reverse link unaffected" 1 !hits;
  (* Heal. *)
  Net.Network.set_link_down net ~src:0 ~dst:1 false;
  Net.Network.send net ~src:0 ~dst:1 ();
  Sim.Engine.run e;
  check_int "healed" 2 !hits

let test_call_on_partitioned_link () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~call_timeout:15.0 ()
  in
  Net.Network.set_link_down net ~src:1 ~dst:0 true;
  (* The reply path is down: the thunk still executes at the destination,
     but the reply is lost and the caller times out. *)
  let raised = ref false and ran = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ran := true))
      with Net.Network.Rpc_timeout _ -> raised := true);
  Sim.Engine.run e;
  check_bool "call times out on half-open link" true !raised;
  check_bool "request still executed" true !ran

let test_link_stats () =
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t = Net.Network.create ~engine:e ~nodes:3 () in
  for n = 0 to 2 do
    Net.Network.set_handler net ~node:n (fun ~src:_ () -> ())
  done;
  Net.Network.send net ~src:0 ~dst:1 ();
  Net.Network.send net ~src:0 ~dst:1 ();
  Net.Network.send net ~src:1 ~dst:2 ();
  Sim.Engine.run e;
  check_int "link 0->1" 2 (Net.Network.link_count net ~src:0 ~dst:1);
  check_int "link 1->2" 1 (Net.Network.link_count net ~src:1 ~dst:2);
  check_int "link 2->0" 0 (Net.Network.link_count net ~src:2 ~dst:0)

(* {1 Message coalescing (batch_window)} *)

let test_batch_coalesces_legs () =
  (* Three sends inside one window ride a single envelope: one latency
     draw, one transport event, FIFO payload order on arrival. *)
  let e = Sim.Engine.create () in
  let net : int Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 1.0)
      ~batch_window:2.0 ()
  in
  let received = ref [] in
  Net.Network.set_handler net ~node:1 (fun ~src:_ msg ->
      received := (msg, Sim.Engine.now e) :: !received);
  Net.Network.set_handler net ~node:0 (fun ~src:_ _ -> ());
  Sim.Engine.schedule e ~delay:0.0 (fun () ->
      Net.Network.send net ~src:0 ~dst:1 1);
  Sim.Engine.schedule e ~delay:0.5 (fun () ->
      Net.Network.send net ~src:0 ~dst:1 2);
  Sim.Engine.schedule e ~delay:1.5 (fun () ->
      Net.Network.send net ~src:0 ~dst:1 3);
  Sim.Engine.run e;
  check_int "one envelope on the wire" 1 (Net.Network.envelopes_sent net);
  check_int "three message legs" 3 (Net.Network.messages_sent net);
  Alcotest.(check (list (pair int (float 1e-9))))
    "FIFO order, all at window + latency"
    [ (1, 3.0); (2, 3.0); (3, 3.0) ]
    (List.rev !received)

let test_batch_timeout_from_send_time () =
  (* The timeout clock starts at the call, not at the batch flush: a
     3-second timeout inside a 5-second window fires at t = 3, while the
     request is still queued. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 1.0)
      ~batch_window:5.0 ()
  in
  let raised = ref nan in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call ~timeout:3.0 net ~src:0 ~dst:1 (fun () -> ()))
      with Net.Network.Rpc_timeout 1 -> raised := Sim.Engine.now e);
  Sim.Engine.run e;
  check_float "Rpc_timeout at call time + timeout" 3.0 !raised

let test_batch_partition_mid_window_drops_envelope () =
  (* The nemesis cuts the link after the request is queued but before the
     window flushes: the whole envelope is dropped and the caller learns of
     it only through the timeout. *)
  let e = Sim.Engine.create () in
  let net : unit Net.Network.t =
    Net.Network.create ~engine:e ~nodes:2 ~latency:(Net.Latency.Constant 1.0)
      ~batch_window:5.0 ~call_timeout:8.0 ()
  in
  let raised = ref nan and ran = ref false in
  Sim.Engine.spawn e (fun () ->
      try ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> ran := true))
      with Net.Network.Rpc_timeout 1 -> raised := Sim.Engine.now e);
  Sim.Engine.schedule e ~delay:2.0 (fun () ->
      Net.Network.set_link_down net ~src:0 ~dst:1 true);
  Sim.Engine.run e;
  check_float "timeout from call time" 8.0 !raised;
  check_bool "request never executed" false !ran;
  check_bool "envelope counted as dropped" true
    (Net.Network.messages_dropped net > 0)

let test_batch_window_zero_identical () =
  (* An explicit zero window must behave exactly like the default build:
     same latency draws, same delivery instants, message for message. *)
  let run window =
    let e = Sim.Engine.create ~seed:77L () in
    let net : int Net.Network.t =
      Net.Network.create ~engine:e ~nodes:2
        ~latency:(Net.Latency.Uniform { lo = 0.5; hi = 4.0 })
        ?batch_window:window ()
    in
    let received = ref [] in
    Net.Network.set_handler net ~node:1 (fun ~src:_ msg ->
        received := (msg, Sim.Engine.now e) :: !received);
    Net.Network.set_handler net ~node:0 (fun ~src:_ _ -> ());
    for i = 1 to 20 do
      Sim.Engine.schedule e ~delay:(float_of_int i *. 0.3) (fun () ->
          Net.Network.send net ~src:0 ~dst:1 i)
    done;
    Sim.Engine.spawn e (fun () ->
        ignore (Net.Network.call net ~src:0 ~dst:1 (fun () -> 0)));
    Sim.Engine.run e;
    (List.rev !received, Net.Network.envelopes_sent net)
  in
  Alcotest.(check bool)
    "window 0 bit-identical to the unbatched default" true
    (run None = run (Some 0.0))

let () =
  Alcotest.run "net"
    [
      ( "latency",
        [ Alcotest.test_case "models" `Quick test_latency_models ] );
      ( "delivery",
        [
          Alcotest.test_case "send delivers" `Quick test_send_delivers;
          Alcotest.test_case "fifo per link" `Quick test_fifo_per_link;
          Alcotest.test_case "self latency zero" `Quick test_self_latency_zero;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "link stats" `Quick test_link_stats;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_call_roundtrip;
          Alcotest.test_case "exception propagation" `Quick
            test_call_propagates_exception;
        ] );
      ( "failures",
        [
          Alcotest.test_case "down node drops" `Quick test_down_node_drops;
          Alcotest.test_case "call to down node" `Quick test_call_to_down_node;
          Alcotest.test_case "dies mid-flight" `Quick
            test_call_node_dies_mid_flight;
          Alcotest.test_case "link partition" `Quick test_link_partition;
          Alcotest.test_case "call on partitioned link" `Quick
            test_call_on_partitioned_link;
          Alcotest.test_case "src down at send" `Quick
            test_call_src_down_at_send;
          Alcotest.test_case "caller crashes before reply" `Quick
            test_call_caller_crashes_before_reply;
          Alcotest.test_case "timeout resumes crashed caller" `Quick
            test_call_timeout_resumes_crashed_caller;
          Alcotest.test_case "slow link extra latency" `Quick
            test_call_slow_link_extra_latency;
        ] );
      ( "batching",
        [
          Alcotest.test_case "coalesces legs into one envelope" `Quick
            test_batch_coalesces_legs;
          Alcotest.test_case "timeout runs from send time" `Quick
            test_batch_timeout_from_send_time;
          Alcotest.test_case "partition mid-window drops envelope" `Quick
            test_batch_partition_mid_window_drops_envelope;
          Alcotest.test_case "window zero identical to default" `Quick
            test_batch_window_zero_identical;
        ] );
    ]
