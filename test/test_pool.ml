(* Sim.Pool: the domain fan-out used by every experiment sweep. *)

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let ys = Sim.Pool.map ~domains:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "squares in input order"
    (List.map (fun x -> x * x) xs)
    ys

exception Boom of int

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Sim.Pool.map ~domains:4
           (fun x -> if x = 7 then raise (Boom x) else x)
           (List.init 20 Fun.id));
      None
    with Boom n -> Some n
  in
  Alcotest.(check (option int)) "Boom 7 escapes the pool" (Some 7) raised

let test_first_exception_by_index () =
  (* Several items raise; the caller sees the lowest-index failure, the
     same one a sequential List.map would have hit first. *)
  let raised =
    try
      ignore
        (Sim.Pool.map ~domains:4
           (fun x -> if x >= 5 then raise (Boom x) else x)
           (List.init 20 Fun.id));
      None
    with Boom n -> Some n
  in
  Alcotest.(check (option int)) "lowest-index exception wins" (Some 5) raised

let test_sequential_fallback () =
  (* With domains:1 the map runs in the calling domain, in order: the
     side-effect log must equal the input sequence exactly. *)
  let log = ref [] in
  let xs = List.init 10 Fun.id in
  let ys =
    Sim.Pool.map ~domains:1
      (fun x ->
        log := x :: !log;
        x + 1)
      xs
  in
  Alcotest.(check (list int)) "results" (List.map succ xs) ys;
  Alcotest.(check (list int)) "visited in input order" xs (List.rev !log)

let test_nested_fallback () =
  (* A map spawned from inside a pool worker must not spawn further
     domains; it falls back to sequential and still returns correct
     results.  The lifetime spawn counter proves it: across the whole
     nested call only the outer map's helper may be spawned. *)
  let before = Sim.Pool.domains_spawned () in
  let nested_flags = Atomic.make 0 in
  let ys =
    Sim.Pool.map ~domains:2
      (fun x ->
        if Sim.Pool.inside_pool () then Atomic.incr nested_flags;
        Sim.Pool.map ~domains:2 (fun y -> (x * 10) + y) [ 1; 2; 3 ])
      [ 0; 1 ]
  in
  Alcotest.(check (list (list int)))
    "nested map correct" [ [ 1; 2; 3 ]; [ 11; 12; 13 ] ] ys;
  Alcotest.(check bool) "workers know they are inside the pool" true
    (Atomic.get nested_flags = 2);
  let spawned = Sim.Pool.domains_spawned () - before in
  Alcotest.(check int)
    "only the outer map's single helper was spawned" 1 spawned

let test_sequential_explicit () =
  (* The named fallback path itself: plain List.map semantics, zero
     domains spawned, usable directly. *)
  let before = Sim.Pool.domains_spawned () in
  let log = ref [] in
  let ys =
    Sim.Pool.sequential
      (fun x ->
        log := x :: !log;
        x * 2)
      [ 3; 1; 4 ]
  in
  Alcotest.(check (list int)) "results" [ 6; 2; 8 ] ys;
  Alcotest.(check (list int)) "in order" [ 3; 1; 4 ] (List.rev !log);
  Alcotest.(check int) "no domains spawned" before
    (Sim.Pool.domains_spawned ());
  (* domains:1 and short lists take the same no-spawn path. *)
  ignore (Sim.Pool.map ~domains:1 succ [ 1; 2; 3 ]);
  ignore (Sim.Pool.map ~domains:4 succ [ 1 ]);
  Alcotest.(check int) "width-1 and singleton maps spawn nothing" before
    (Sim.Pool.domains_spawned ())

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Sim.Pool.map ~domains:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Sim.Pool.map ~domains:4 succ [ 1 ])

let test_sweep_deterministic () =
  (* The tentpole property: an experiment sweep yields identical rows at
     any domain count (each run owns its engine, rng, and store). *)
  let sweep domains =
    Dbsim.Experiment.staleness_sweep ~periods:[ 25.0; 50.0 ] ~domains
      ~eager:false ()
  in
  let rows1 = sweep 1 and rows4 = sweep 4 in
  Alcotest.(check bool) "1 domain = 4 domains" true (rows1 = rows4)

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "first exception by index" `Quick
            test_first_exception_by_index;
          Alcotest.test_case "domains:1 sequential" `Quick
            test_sequential_fallback;
          Alcotest.test_case "nested fallback" `Quick test_nested_fallback;
          Alcotest.test_case "explicit sequential path" `Quick
            test_sequential_explicit;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep identical at any width" `Quick
            test_sweep_deterministic;
        ] );
    ]
