(* Sim.Pool: the domain fan-out used by every experiment sweep. *)

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let ys = Sim.Pool.map ~domains:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "squares in input order"
    (List.map (fun x -> x * x) xs)
    ys

exception Boom of int

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Sim.Pool.map ~domains:4
           (fun x -> if x = 7 then raise (Boom x) else x)
           (List.init 20 Fun.id));
      None
    with Boom n -> Some n
  in
  Alcotest.(check (option int)) "Boom 7 escapes the pool" (Some 7) raised

let test_first_exception_by_index () =
  (* Several items raise; the caller sees the lowest-index failure, the
     same one a sequential List.map would have hit first. *)
  let raised =
    try
      ignore
        (Sim.Pool.map ~domains:4
           (fun x -> if x >= 5 then raise (Boom x) else x)
           (List.init 20 Fun.id));
      None
    with Boom n -> Some n
  in
  Alcotest.(check (option int)) "lowest-index exception wins" (Some 5) raised

let test_sequential_fallback () =
  (* With domains:1 the map runs in the calling domain, in order: the
     side-effect log must equal the input sequence exactly. *)
  let log = ref [] in
  let xs = List.init 10 Fun.id in
  let ys =
    Sim.Pool.map ~domains:1
      (fun x ->
        log := x :: !log;
        x + 1)
      xs
  in
  Alcotest.(check (list int)) "results" (List.map succ xs) ys;
  Alcotest.(check (list int)) "visited in input order" xs (List.rev !log)

let test_nested_fallback () =
  (* A map spawned from inside a pool worker must not spawn further
     domains; it falls back to sequential and still returns correct
     results. *)
  let ys =
    Sim.Pool.map ~domains:2
      (fun x -> Sim.Pool.map ~domains:2 (fun y -> (x * 10) + y) [ 1; 2; 3 ])
      [ 0; 1 ]
  in
  Alcotest.(check (list (list int)))
    "nested map correct" [ [ 1; 2; 3 ]; [ 11; 12; 13 ] ] ys

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" [] (Sim.Pool.map ~domains:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 2 ] (Sim.Pool.map ~domains:4 succ [ 1 ])

let test_sweep_deterministic () =
  (* The tentpole property: an experiment sweep yields identical rows at
     any domain count (each run owns its engine, rng, and store). *)
  let sweep domains =
    Dbsim.Experiment.staleness_sweep ~periods:[ 25.0; 50.0 ] ~domains
      ~eager:false ()
  in
  let rows1 = sweep 1 and rows4 = sweep 4 in
  Alcotest.(check bool) "1 domain = 4 domains" true (rows1 = rows4)

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "first exception by index" `Quick
            test_first_exception_by_index;
          Alcotest.test_case "domains:1 sequential" `Quick
            test_sequential_fallback;
          Alcotest.test_case "nested fallback" `Quick test_nested_fallback;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "sweep identical at any width" `Quick
            test_sweep_deterministic;
        ] );
    ]
