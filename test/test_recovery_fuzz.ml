(* Crash-at-every-prefix recovery fuzzing.

   A seeded random workload drives one node's scheme + WAL, producing a
   record stream.  The log is then truncated at EVERY record boundary —
   each prefix is a possible crash image (the volatile tail died with the
   node) — and [Wal.Recovery.replay] runs against a naive reference model
   that interprets the same prefix.  At every prefix point:

   - no committed transaction is lost: every key reads back the value of
     the last transaction with a Commit record in the prefix;
   - no uncommitted update is visible: writes of in-flight or aborted
     transactions never surface;
   - the version counters (u, q, g) recover to exactly the
     last-logged/checkpointed values;
   - [committed_transactions] and [in_flight_transactions] match the
     model's bookkeeping.

   On a mismatch the failing seed, prefix point and full record dump are
   written to fuzz-failure-<seed>.txt so CI can upload the artifact; the
   file name alone is enough to reproduce (the workload is a pure
   function of the seed).

   A second, cluster-level test crashes a live node mid-workload with the
   durability model on and checks that every update acknowledged
   Committed before the crash is still in [committed_transactions] (and
   readable) after recovery. *)

module Store = Vstore.Store
module Log = Wal.Log
module Record = Wal.Record
module Scheme = Wal.Scheme
module Recovery = Wal.Recovery

let keys = Array.init 9 (Printf.sprintf "k%d")

(* ---------- workload generation ---------- *)

(* Grow a log the way a node does: sessions begin at the current update
   version, write, then commit (moving to the future first if an
   advancement overtook them) or abort.  Advancement and collection
   records appear between transactions, and occasional checkpoints (only
   at quiescent points) bake the store into the log.  Checkpoints are
   appended WITHOUT truncating so the full stream survives for prefix
   enumeration — replay treats a mid-log checkpoint exactly like the
   first record of a truncated log. *)
let gen_workload rng kind =
  let store : int Store.t = Store.create () in
  let log : int Log.t = Log.create () in
  let scheme = Scheme.create kind ~store ~log in
  let u = ref 1 and q = ref 0 and g = ref (-1) in
  let next_txn = ref 0 in
  (* Each live session owns one of three disjoint key slices — the scheme
     assumes its caller holds exclusive locks, so two concurrent sessions
     must never touch the same item. *)
  let sessions = ref [] in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let open_session () =
    let taken = List.map (fun (_, slot, _, _) -> slot) !sessions in
    match List.filter (fun s -> not (List.mem s taken)) [ 0; 1; 2 ] with
    | [] -> ()
    | free ->
        incr next_txn;
        let s = Scheme.begin_session scheme ~txn:!next_txn ~version:!u in
        sessions := (!next_txn, pick free, s, ref []) :: !sessions
  in
  let write_in_session () =
    match !sessions with
    | [] -> open_session ()
    | l ->
        let _, slot, s, _ = pick l in
        let key = keys.(slot + (3 * Random.State.int rng 3)) in
        let value =
          if Random.State.int rng 10 = 0 then None
          else Some (Random.State.int rng 1000)
        in
        Scheme.write scheme s key value
  in
  (* Savepoints: mark the picked session, or roll it back to its most
     recent mark (popping it), exercising the Rollback record across every
     crash prefix. *)
  let savepoint_or_rollback () =
    match !sessions with
    | [] -> ()
    | l ->
        let _, _, s, sps = pick l in
        if !sps = [] || Random.State.bool rng then
          sps := Scheme.savepoint scheme s :: !sps
        else begin
          match !sps with
          | sp :: rest ->
              Scheme.rollback_to scheme s sp;
              sps := rest
          | [] -> ()
        end
  in
  let close_session ~commit =
    match !sessions with
    | [] -> ()
    | l ->
        let ((_, _, s, _) as chosen) = pick l in
        sessions := List.filter (fun c -> c != chosen) l;
        if commit then begin
          if Scheme.version s < !u then
            Scheme.move_to_future scheme s ~new_version:!u;
          Scheme.commit scheme s ~final_version:(Scheme.version s)
        end
        else Scheme.abort scheme s
  in
  (* Version advancement mimics the protocol's gating: q never reaches a
     version with a live session (the real coordinator drains the update
     counters first), and g trails q. *)
  let advance () =
    incr u;
    Log.append log (Record.Advance_update !u);
    let min_active =
      List.fold_left
        (fun acc (_, _, s, _) -> min acc (Scheme.version s))
        max_int !sessions
    in
    let new_q = min (!u - 1) (min_active - 1) in
    if new_q > !q then begin
      q := new_q;
      Log.append log (Record.Advance_query !q)
    end;
    if !q - 1 > !g then begin
      incr g;
      Store.gc store ~collect:!g ~query:!q;
      Log.append log (Record.Collect { collect = !g; query = !q })
    end
  in
  let checkpoint () =
    if !sessions = [] then
      Log.append log
        (Record.Checkpoint
           {
             items = Store.snapshot_items (Store.snapshot store);
             u = !u;
             q = !q;
             g = !g;
           })
  in
  let steps = 90 + Random.State.int rng 40 in
  for _ = 1 to steps do
    match Random.State.int rng 100 with
    | r when r < 15 -> if List.length !sessions < 3 then open_session ()
    | r when r < 50 -> write_in_session ()
    | r when r < 60 -> savepoint_or_rollback ()
    | r when r < 74 -> close_session ~commit:true
    | r when r < 81 -> close_session ~commit:false
    | r when r < 93 -> advance ()
    | _ -> checkpoint ()
  done;
  (* Settle: resolve every open session so the tail of the stream is also
     a quiescent point (prefixes still cut through mid-transaction
     states). *)
  while !sessions <> [] do
    close_session ~commit:(Random.State.bool rng)
  done;
  Log.records log

(* ---------- naive reference model ---------- *)

type model = {
  vals : (string, int option) Hashtbl.t;
      (* visible committed value per key; [Some None] is a tombstone *)
  pending : (int, (string * int option) list) Hashtbl.t;
  resolved : (int, bool) Hashtbl.t;  (* txn -> still in flight? *)
  mutable committed : int list;  (* reverse commit order *)
  mutable mu : int;
  mutable mq : int;
  mutable mg : int;
}

let model_create () =
  {
    vals = Hashtbl.create 16;
    pending = Hashtbl.create 16;
    resolved = Hashtbl.create 16;
    committed = [];
    mu = 1;
    mq = 0;
    mg = -1;
  }

let model_apply m = function
  | Record.Begin { txn; _ } ->
      Hashtbl.replace m.pending txn [];
      Hashtbl.replace m.resolved txn true
  | Record.Update { txn; key; value } ->
      let w = Option.value (Hashtbl.find_opt m.pending txn) ~default:[] in
      Hashtbl.replace m.pending txn ((key, value) :: w)
  | Record.Commit { txn; _ } ->
      (match Hashtbl.find_opt m.pending txn with
      | None -> ()
      | Some writes ->
          List.iter
            (fun (key, value) -> Hashtbl.replace m.vals key value)
            (List.rev writes);
          Hashtbl.remove m.pending txn);
      Hashtbl.replace m.resolved txn false;
      m.committed <- txn :: m.committed
  | Record.Rollback { txn; keep } -> (
      match Hashtbl.find_opt m.pending txn with
      | None -> ()
      | Some w ->
          let rec drop n l =
            if n <= 0 then l
            else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
          in
          Hashtbl.replace m.pending txn (drop (List.length w - keep) w))
  | Record.Abort { txn } ->
      Hashtbl.remove m.pending txn;
      Hashtbl.replace m.resolved txn false
  | Record.Advance_update v -> if v > m.mu then m.mu <- v
  | Record.Advance_query v -> if v > m.mq then m.mq <- v
  | Record.Collect { collect; _ } ->
      (* Collection drops/renumbers old versions; the latest visible value
         of every key is untouched. *)
      if collect > m.mg then m.mg <- collect
  | Record.Checkpoint { items; u; q; g } ->
      Hashtbl.reset m.vals;
      Hashtbl.reset m.pending;
      List.iter
        (fun (key, entries) ->
          match List.rev entries with
          | (_, newest) :: _ -> Hashtbl.replace m.vals key newest
          | [] -> ())
        items;
      m.mu <- u;
      m.mq <- q;
      m.mg <- g

let model_visible m key =
  match Hashtbl.find_opt m.vals key with Some (Some v) -> Some v | _ -> None

let model_in_flight m =
  Hashtbl.fold (fun txn live acc -> if live then txn :: acc else acc) m.resolved []
  |> List.sort compare

(* ---------- the prefix sweep ---------- *)

let dump_failure ~seed ~kind ~prefix ~records message =
  let path = Printf.sprintf "fuzz-failure-%d.txt" seed in
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf
    "recovery fuzz failure@.seed: %d@.scheme: %s@.crash prefix: %d of %d \
     records@.%s@.@.log records (first %d form the crash image):@."
    seed
    (match kind with Scheme.No_undo -> "no-undo" | Scheme.Undo_redo -> "undo-redo")
    prefix (List.length records) message prefix;
  List.iteri
    (fun i r ->
      Format.fprintf ppf "%s%4d. %a@."
        (if i < prefix then " " else "!")
        i (Record.pp Format.pp_print_int) r)
    records;
  Format.pp_print_flush ppf ();
  close_out oc;
  Alcotest.failf "seed %d prefix %d: %s (details in %s)" seed prefix message
    path

let check_prefix ~seed ~kind ~records ~prefix =
  let truncated : int Log.t = Log.create () in
  List.iteri (fun i r -> if i < prefix then Log.append truncated r) records;
  let model = model_create () in
  List.iteri (fun i r -> if i < prefix then model_apply model r) records;
  let fail fmt = Printf.ksprintf (dump_failure ~seed ~kind ~prefix ~records) fmt in
  let store, versions = Recovery.replay truncated () in
  (* Committed effects survive; uncommitted ones never surface. *)
  Array.iter
    (fun key ->
      let expected = model_visible model key
      and got = Store.read_le store key max_int in
      if expected <> got then
        fail "key %s: recovered %s, reference model has %s" key
          (match got with None -> "nothing" | Some v -> string_of_int v)
          (match expected with None -> "nothing" | Some v -> string_of_int v))
    keys;
  (* Version counters recover to the last logged/checkpointed values. *)
  if
    (versions.Recovery.update_version, versions.Recovery.query_version,
     versions.Recovery.collected_version)
    <> (model.mu, model.mq, model.mg)
  then
    fail "versions recovered (u=%d q=%d g=%d), reference has (u=%d q=%d g=%d)"
      versions.Recovery.update_version versions.Recovery.query_version
      versions.Recovery.collected_version model.mu model.mq model.mg;
  (* Commit-order bookkeeping agrees. *)
  if Recovery.committed_transactions truncated <> List.rev model.committed
  then fail "committed transaction list diverges from the reference";
  if Recovery.in_flight_transactions truncated <> model_in_flight model then
    fail "in-flight transaction list diverges from the reference"

let test_crash_at_every_prefix () =
  let seeds = List.init 12 (fun i -> 1000 + (77 * i)) in
  let total = ref 0 in
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let kind = if seed mod 2 = 0 then Scheme.No_undo else Scheme.Undo_redo in
      let records = gen_workload rng kind in
      let n = List.length records in
      for prefix = 0 to n do
        incr total;
        check_prefix ~seed ~kind ~records ~prefix
      done)
    seeds;
  (* The CI gate: this suite only counts if it really sweeps the space. *)
  Alcotest.(check bool)
    (Printf.sprintf "swept >= 1000 prefix points (got %d)" !total)
    true (!total >= 1000)

(* ---------- live crash: acked commits survive ---------- *)

let test_acked_commits_survive_crash () =
  let seed = 4242L in
  let engine = Sim.Engine.create ~seed () in
  let config =
    {
      Ava3.Config.default with
      rpc_timeout = 10.0;
      disk_force_latency = 0.5;
      group_commit_window = 2.0;
    }
  in
  let db : int Ava3.Cluster.t = Ava3.Cluster.create ~engine ~config ~nodes:2 () in
  for n = 0 to 1 do
    Ava3.Cluster.load db ~node:n
      (List.init 8 (fun i -> (Printf.sprintf "n%d-k%d" n i, 0)))
  done;
  (* Clients hammer node 0 with single-node updates on private keys,
     recording every acknowledged commit. *)
  let acked = ref [] in
  for c = 0 to 3 do
    Sim.Engine.spawn engine ~name:(Printf.sprintf "client%d" c) (fun () ->
        for i = 1 to 12 do
          let key = Printf.sprintf "n0-k%d" ((2 * c) mod 8) in
          (match
             Ava3.Cluster.run_update db ~root:0
               ~ops:[ Ava3.Update_exec.Write { node = 0; key; value = (100 * c) + i } ]
           with
          | Ava3.Update_exec.Committed info ->
              acked := (info.Ava3.Update_exec.txn_id, key, (100 * c) + i) :: !acked
          | Ava3.Update_exec.Aborted _ | Ava3.Update_exec.Root_down _ -> ());
          Sim.Engine.sleep 1.5
        done)
  done;
  let acked_before_crash = ref [] in
  Sim.Engine.schedule engine ~name:"nemesis" ~delay:13.25 (fun () ->
      acked_before_crash := !acked;
      Ava3.Cluster.crash db ~node:0;
      Sim.Engine.sleep 6.0;
      Ava3.Cluster.recover db ~node:0);
  Sim.Engine.run engine;
  Alcotest.(check bool)
    "some commits were acknowledged before the crash" true
    (List.length !acked_before_crash > 0);
  (* Every commit acknowledged before the crash must be in the recovered
     log's committed set — the group-commit ack means its records were
     forced. *)
  let survivors =
    Recovery.committed_transactions (Ava3.Node_state.log (Ava3.Cluster.node db 0))
  in
  List.iter
    (fun (txn, _, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "acked T%d survived the crash" txn)
        true (List.mem txn survivors))
    !acked_before_crash

let () =
  Alcotest.run "recovery_fuzz"
    [
      ( "crash-at-every-prefix",
        [
          Alcotest.test_case "replay matches reference at every boundary"
            `Quick test_crash_at_every_prefix;
        ] );
      ( "live crash",
        [
          Alcotest.test_case "acked commits survive a node crash" `Quick
            test_acked_commits_survive_crash;
        ] );
    ]
