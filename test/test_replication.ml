(* Replication tests: version-pinned backup reads are byte-identical to
   primary reads at the same pin (property, 10 seeds x both gc_renumber
   rules), primary-crash failover loses no acknowledged commit, and a
   partitioned backup is demoted (commits keep flowing) then re-syncs and
   re-earns its read-set membership after the partition heals. *)

module Cluster = Ava3.Cluster
module Cluster_state = Ava3.Cluster_state
module Node_state = Ava3.Node_state
module Update = Ava3.Update_exec
module Store = Vstore.Store

let check_bool = Alcotest.(check bool)

(* {1 Pinned-read equivalence} *)

let keys p = List.init 4 (fun j -> Printf.sprintf "k%d_%d" p j)

(* Mixed workload on 3 partitions x 2 backups: writers, cross-partition
   queries (exercising backup routing), periodic advancement.  An online
   probe compares primary and backup answers at the same pin whenever
   their query versions coincide; a final quiescent sweep requires every
   backup store to agree with its primary on every key. *)
let equivalence_run ~seed ~gc_renumber =
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let config =
    {
      Ava3.Config.default with
      replicas = 2;
      gc_renumber;
      replica_catchup_timeout = 10.0;
    }
  in
  let db : int Cluster.t = Cluster.create ~engine ~config ~nodes:3 () in
  let cs = Cluster.state db in
  for p = 0 to 2 do
    Cluster.load db ~node:p (List.map (fun k -> (k, 0)) (keys p))
  done;
  let mismatches = ref [] in
  let violations = ref [] in
  Sim.Engine.spawn engine (fun () ->
      for i = 1 to 40 do
        let p = i mod 3 in
        let key = Printf.sprintf "k%d_%d" p (i mod 4) in
        ignore
          (Cluster.run_update_with_retry db ~root:p
             ~ops:[ Update.Write { node = p; key; value = i } ]
             ()
            : int Update.outcome * int);
        Sim.Engine.sleep 3.0
      done);
  Sim.Engine.spawn engine (fun () ->
      let reads =
        List.concat_map (fun p -> List.map (fun k -> (p, k)) (keys p)) [ 0; 1; 2 ]
      in
      for i = 0 to 30 do
        (try ignore (Cluster.run_query db ~root:(i mod 3) ~reads) with _ -> ());
        Sim.Engine.sleep 4.0
      done);
  Cluster.start_periodic_advancement db ~coordinator:0 ~period:20.0 ~until:140.0;
  (* Online probe: same pin => same answer, for every key of the backup's
     partition, at any moment the backup advertises the primary's query
     version. *)
  Sim.Engine.spawn engine (fun () ->
      for _ = 1 to 28 do
        Sim.Engine.sleep 5.0;
        violations := Cluster.check_invariants db @ !violations;
        for p = 0 to 2 do
          let pnode = Cluster_state.primary cs p in
          Array.iter
            (fun b ->
              let bnode = Cluster.node db b.Cluster_state.b_site in
              if
                b.Cluster_state.b_insync && Node_state.alive bnode
                && Node_state.alive pnode
                && Node_state.q bnode = Node_state.q pnode
              then begin
                let pin = Node_state.q pnode in
                List.iter
                  (fun k ->
                    let vp = Store.read_le (Node_state.store pnode) k pin in
                    let vb = Store.read_le (Node_state.store bnode) k pin in
                    if vp <> vb then
                      mismatches :=
                        Printf.sprintf
                          "seed=%Ld renumber=%b t=%.1f part=%d site%d key=%s \
                           pin=%d"
                          seed gc_renumber (Sim.Engine.now engine) p
                          b.Cluster_state.b_site k pin
                        :: !mismatches)
                  (keys p)
              end)
            (Cluster_state.backups cs p)
        done
      done);
  Sim.Engine.run engine;
  (* Quiescent: every backup converged to its primary's exact state. *)
  for p = 0 to 2 do
    let pnode = Cluster_state.primary cs p in
    Array.iter
      (fun b ->
        let bnode = Cluster.node db b.Cluster_state.b_site in
        if Node_state.q bnode <> Node_state.q pnode then
          mismatches :=
            Printf.sprintf "seed=%Ld: site%d final q %d <> primary q %d" seed
              b.Cluster_state.b_site (Node_state.q bnode) (Node_state.q pnode)
            :: !mismatches;
        List.iter
          (fun k ->
            let pin = Node_state.q pnode in
            if
              Store.read_le (Node_state.store pnode) k pin
              <> Store.read_le (Node_state.store bnode) k pin
            then
              mismatches :=
                Printf.sprintf "seed=%Ld: site%d final state differs on %s" seed
                  b.Cluster_state.b_site k
                :: !mismatches)
          (keys p))
      (Cluster_state.backups cs p)
  done;
  Alcotest.(check (list string))
    (Printf.sprintf "no invariant violations (seed %Ld)" seed)
    [] !violations;
  Alcotest.(check (list string))
    (Printf.sprintf "pinned reads identical (seed %Ld)" seed)
    [] !mismatches;
  (Cluster.stats db).Cluster.backup_reads

let test_equivalence_across_seeds () =
  let renumber_runs = ref 0 in
  List.iter
    (fun gc_renumber ->
      for seed = 1 to 10 do
        let reads = equivalence_run ~seed:(Int64.of_int seed) ~gc_renumber in
        renumber_runs := !renumber_runs + reads
      done)
    [ false; true ];
  (* Routing must actually spread reads over backups, or the property
     above tested nothing. *)
  check_bool "some reads served by backups" true (!renumber_runs > 0)

(* {1 Failover: no acknowledged commit is lost} *)

let test_failover_no_acked_loss () =
  let engine = Sim.Engine.create ~seed:21L ~trace:false () in
  let config =
    { Ava3.Config.default with replicas = 2; replica_catchup_timeout = 8.0 }
  in
  let db : int Cluster.t = Cluster.create ~engine ~config ~nodes:2 () in
  let cs = Cluster.state db in
  Cluster.load db ~node:0 [ ("seed0", 0) ];
  Cluster.load db ~node:1 [ ("seed1", 0) ];
  let acked = ref [] in
  let after_crash = ref 0 in
  Sim.Engine.spawn engine (fun () ->
      for i = 1 to 30 do
        let key = Printf.sprintf "w%d" i in
        (match
           Cluster.run_update db ~root:0
             ~ops:[ Update.Write { node = 0; key; value = i } ]
         with
        | Update.Committed _ ->
            acked := (key, i) :: !acked;
            if Sim.Engine.now engine > 25.0 then incr after_crash
        | Update.Aborted _ | Update.Root_down _ -> ());
        Sim.Engine.sleep 2.0
      done);
  Sim.Engine.spawn engine (fun () ->
      Sim.Engine.sleep 25.0;
      Cluster.crash db ~node:0);
  Sim.Engine.run engine;
  let s = Cluster.stats db in
  check_bool "a backup was promoted" true (s.Cluster.replica_promotions >= 1);
  let np = Cluster_state.primary cs 0 in
  check_bool "partition 0 has a new primary" true (Node_state.id np <> 0);
  check_bool "commits continued after failover" true (!after_crash > 0);
  check_bool "some commits were acknowledged before the crash" true
    (List.exists (fun (_, i) -> i <= 10) !acked);
  (* Every acknowledged commit — before or after the failover — is
     readable at the new primary. *)
  List.iter
    (fun (key, v) ->
      Alcotest.(check (option int))
        (Printf.sprintf "acked %s survived failover" key)
        (Some v)
        (Store.read_le (Node_state.store np) key (Node_state.u np)))
    !acked

(* {1 Partition: demotion keeps commits flowing, healing re-syncs} *)

let test_demotion_and_resync () =
  let engine = Sim.Engine.create ~seed:5L ~trace:false () in
  let config =
    { Ava3.Config.default with replicas = 1; replica_catchup_timeout = 5.0 }
  in
  let db : int Cluster.t = Cluster.create ~engine ~config ~nodes:1 () in
  let cs = Cluster.state db in
  let net = Cluster.network db in
  Cluster.load db ~node:0 [ ("a", 0) ];
  let committed_during_partition = ref 0 in
  Sim.Engine.spawn engine (fun () ->
      for i = 1 to 25 do
        (match
           Cluster.run_update db ~root:0
             ~ops:[ Update.Write { node = 0; key = "a"; value = i } ]
         with
        | Update.Committed _ ->
            let t = Sim.Engine.now engine in
            if t > 12.0 && t < 40.0 then incr committed_during_partition
        | Update.Aborted _ | Update.Root_down _ -> ());
        Sim.Engine.sleep 3.0
      done);
  Sim.Engine.spawn engine (fun () ->
      Sim.Engine.sleep 10.0;
      Net.Network.set_link_down net ~src:0 ~dst:1 true;
      Net.Network.set_link_down net ~src:1 ~dst:0 true;
      Sim.Engine.sleep 30.0;
      Net.Network.set_link_down net ~src:0 ~dst:1 false;
      Net.Network.set_link_down net ~src:1 ~dst:0 false);
  Sim.Engine.run engine;
  let s = Cluster.stats db in
  check_bool "straggling backup was demoted" true
    (s.Cluster.replica_demotions >= 1);
  check_bool "commits kept flowing during the partition" true
    (!committed_during_partition > 0);
  (* After healing, the next gated commits re-ship the backlog and the
     backup re-earns its in-sync status and exact convergence. *)
  let b = (Cluster_state.backups cs 0).(0) in
  check_bool "backup back in sync after healing" true b.Cluster_state.b_insync;
  let pnode = Cluster_state.primary cs 0 in
  let bnode = Cluster.node db b.Cluster_state.b_site in
  Alcotest.(check (option int))
    "backup converged to the primary's final value"
    (Store.read_le (Node_state.store pnode) "a" (Node_state.u pnode))
    (Store.read_le (Node_state.store bnode) "a" (Node_state.u bnode))

let () =
  Alcotest.run "replication"
    [
      ( "equivalence",
        [
          Alcotest.test_case "pinned backup reads, 10 seeds x 2 gc rules"
            `Quick test_equivalence_across_seeds;
        ] );
      ( "failover",
        [
          Alcotest.test_case "no acked commit lost" `Quick
            test_failover_no_acked_loss;
        ] );
      ( "partition",
        [
          Alcotest.test_case "demotion and re-sync" `Quick
            test_demotion_and_resync;
        ] );
    ]
