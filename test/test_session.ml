(* Session-layer tests: savepoint create/rollback/release semantics (the
   write-set is restored and the scope's locks become re-acquirable; a
   released scope merges into its parent), seeded retry backoff
   determinism, retry budget exhaustion, the acked-commit idempotence
   guard — and the end-to-end oracle: ten seeds under both GC renumbering
   rules running DSL-generated programs through the session layer under a
   nemesis, with the serializability checker and the index<->base
   invariant audit asserting zero violations, plus byte-equality of the
   [~retries:0] override against a [max_retries = 0] config. *)

module Cluster = Ava3.Cluster
module Node_state = Ava3.Node_state
module Config = Ava3.Config
module SC = Dbsim.Serial_check

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let no_msgs what msgs = Alcotest.(check (list string)) what [] msgs

let scheme_name = function
  | Wal.Scheme.No_undo -> "no-undo"
  | Wal.Scheme.Undo_redo -> "undo-redo"

(* Unit-latency cluster so the tests' timing reasoning is exact. *)
let with_cluster ?config ?(nodes = 2) ?(seed = 7L) body =
  let engine = Sim.Engine.create ~seed () in
  let db : int Cluster.t =
    Cluster.create ~engine ?config ~latency:(Net.Latency.Constant 1.0) ~nodes
      ()
  in
  Sim.Engine.spawn engine (fun () -> body db);
  Sim.Engine.run engine;
  db

let visible db ~node key =
  Vstore.Store.read_le (Node_state.store (Cluster.node db node)) key max_int

(* {1 Savepoint semantics} *)

(* Rollback erases the scope's writes — pre-scope writes and reads keep
   their values, in-scope creations vanish — under both WAL schemes (the
   deferred-workspace and the in-place-undo implementations must agree). *)
let test_rollback_restores_write_set scheme () =
  let config = { Config.default with scheme } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("a", 1) ];
        Cluster.load db ~node:1 [ ("b", 2) ];
        let s = Session.create db ~seed:1L in
        match
          Session.txn s (fun c ->
              Session.write c ~node:0 "a" 10;
              (match
                 Session.nested c (fun () ->
                     Session.write c ~node:0 "a" 999;
                     Session.write c ~node:1 "b" 999;
                     Session.write c ~node:1 "fresh" 7;
                     raise Session.Rollback)
               with
              | Ok () -> Alcotest.fail "scope must roll back"
              | Error `Rolled_back -> ()
              | Error `Deadlock -> Alcotest.fail "no contention here");
              (* The transaction's own view is restored too. *)
              check_bool "a restored in own view" true
                (Session.read c ~node:0 "a" = Some 10);
              check_bool "b restored in own view" true
                (Session.read c ~node:1 "b" = Some 2);
              check_bool "fresh gone from own view" true
                (Session.read c ~node:1 "fresh" = None))
        with
        | Session.Committed { attempts; _ } -> check_int "one attempt" 1 attempts
        | Session.Failed _ -> Alcotest.fail "must commit")
  in
  check_bool "pre-scope write survives" true (visible db ~node:0 "a" = Some 10);
  check_bool "rolled-back write erased" true (visible db ~node:1 "b" = Some 2);
  check_bool "rolled-back creation erased" true
    (visible db ~node:1 "fresh" = None);
  no_msgs "quiescent" (Cluster.check_quiescent_invariants db)

(* A released (normally returned) scope merges into the parent: its writes
   commit with the transaction; nesting is arbitrary and rollback only
   peels back to its own mark. *)
let test_release_merges scheme () =
  let config = { Config.default with scheme } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("a", 1) ];
        let s = Session.create db ~seed:2L in
        match
          Session.txn s (fun c ->
              match
                Session.nested c (fun () ->
                    Session.write c ~node:0 "a" 50;
                    (match
                       Session.nested c (fun () ->
                           Session.write c ~node:0 "a" 60;
                           Session.write c ~node:1 "inner" 1;
                           raise Session.Rollback)
                     with
                    | Error `Rolled_back -> ()
                    | _ -> Alcotest.fail "inner scope must roll back");
                    Session.write c ~node:1 "outer" 2)
              with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "outer scope must merge")
        with
        | Session.Committed _ -> ()
        | Session.Failed _ -> Alcotest.fail "must commit")
  in
  check_bool "outer-scope write committed" true
    (visible db ~node:0 "a" = Some 50);
  check_bool "outer creation committed" true
    (visible db ~node:1 "outer" = Some 2);
  check_bool "inner rollback confined to its mark" true
    (visible db ~node:1 "inner" = None);
  no_msgs "quiescent" (Cluster.check_quiescent_invariants db)

(* Locks first acquired inside a rolled-back scope are released: a
   concurrent transaction takes the same item and commits while the first
   transaction is still open.  If rollback leaked the lock, B would block
   until A's commit and finish after it. *)
let test_rollback_releases_locks () =
  let config =
    { Config.default with read_service_time = 1.0; write_service_time = 1.0 }
  in
  let engine = Sim.Engine.create ~seed:9L () in
  let db : int Cluster.t =
    Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
      ~nodes:2 ()
  in
  Cluster.load db ~node:1 [ ("k", 0) ];
  let a_done = ref None and b_done = ref None in
  Sim.Engine.schedule engine ~name:"A" ~delay:1.0 (fun () ->
      let s = Session.create db ~seed:1L ~coordinators:[ 0 ] in
      match
        Session.txn s (fun c ->
            (match
               Session.nested c (fun () ->
                   Session.write c ~node:1 "k" 111;
                   raise Session.Rollback)
             with
            | Error `Rolled_back -> ()
            | _ -> Alcotest.fail "scope must roll back");
            (* Stay open long after B wants the lock. *)
            Session.pause c 40.0;
            Session.write c ~node:0 "other" 1)
      with
      | Session.Committed cm -> a_done := Some cm.Session.finished_at
      | Session.Failed _ -> Alcotest.fail "A must commit");
  Sim.Engine.schedule engine ~name:"B" ~delay:10.0 (fun () ->
      let s = Session.create db ~seed:2L ~coordinators:[ 1 ] in
      match Session.txn s (fun c -> Session.write c ~node:1 "k" 222) with
      | Session.Committed cm ->
          check_int "B needed no retry" 1 cm.Session.attempts;
          b_done := Some cm.Session.finished_at
      | Session.Failed _ -> Alcotest.fail "B must commit");
  Sim.Engine.run engine;
  match (!a_done, !b_done) with
  | Some a, Some b ->
      check_bool "B committed while A was still open" true (b < a);
      check_bool "B's write is the final state" true
        (visible db ~node:1 "k" = Some 222);
      no_msgs "quiescent" (Cluster.check_quiescent_invariants db)
  | _ -> Alcotest.fail "both transactions must finish"

(* {1 Retry discipline} *)

(* Every attempt against a crashed participant fails; the budget is spent
   and the last error surfaces.  attempts = max_retries + 1.  The outcome
   is checked after the run so a wedged transaction fails loudly instead
   of skipping the assertions. *)
let test_budget_exhaustion () =
  let config =
    {
      Config.default with
      max_retries = 2;
      retry_backoff_base = 2.0;
      rpc_timeout = 5.0;
    }
  in
  let outcome = ref None in
  let db =
    with_cluster ~config ~nodes:2 (fun db ->
        Cluster.load db ~node:1 [ ("k", 0) ];
        Cluster.crash db ~node:1;
        let s = Session.create db ~seed:3L ~coordinators:[ 0 ] in
        outcome :=
          Some (Session.txn s (fun c -> Session.write c ~node:1 "k" 1)))
  in
  (match !outcome with
  | Some (Session.Failed { attempts; last; durable; _ }) -> (
      check_int "budget + 1 attempts" 3 attempts;
      check_bool "nothing durable" true (durable = []);
      match last with
      | Session.Aborted (`Rpc_timeout 1 | `Node_down 1) -> ()
      | Session.Aborted r ->
          Alcotest.failf "unexpected abort reason %s"
            (Ava3.Txn_core.pp_reason r)
      | Session.Root_down _ -> Alcotest.fail "root was alive")
  | Some (Session.Committed _) -> Alcotest.fail "cannot commit to a dead node"
  | None -> Alcotest.fail "transaction never finished");
  let retries = ref 0 in
  List.iter
    (fun (n : Sim.Metrics.node_snapshot) -> retries := !retries + n.session_retries)
    (Cluster.metrics_snapshot db);
  check_int "both retries recorded" 2 !retries

(* The backoff sequence is a pure function of the session seed: same seed,
   same total backoff (and so the same virtual timeline); a different seed
   jitters differently. *)
let test_backoff_determinism () =
  let run seed =
    let config =
      {
        Config.default with
        max_retries = 3;
        retry_backoff_base = 2.0;
        rpc_timeout = 5.0;
      }
    in
    let engine = Sim.Engine.create ~seed:11L () in
    let db : int Cluster.t =
      Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
        ~nodes:2 ()
    in
    Cluster.load db ~node:1 [ ("k", 0) ];
    Cluster.crash db ~node:1;
    Sim.Engine.spawn engine (fun () ->
        let s = Session.create db ~seed ~coordinators:[ 0 ] in
        ignore (Session.txn s (fun c -> Session.write c ~node:1 "k" 1)));
    Sim.Engine.run engine;
    let backoff = ref 0.0 in
    List.iter
      (fun (n : Sim.Metrics.node_snapshot) ->
        backoff := !backoff +. n.session_backoff)
      (Cluster.metrics_snapshot db);
    (!backoff, Sim.Engine.now engine)
  in
  let b1, t1 = run 5L and b2, t2 = run 5L and b3, _ = run 6L in
  check_bool "backoff spent" true (b1 > 0.0);
  check_bool "same seed, same backoff" true (b1 = b2);
  check_bool "same seed, same timeline" true (t1 = t2);
  check_bool "different seed, different jitter" true (b1 <> b3)

(* Acked-then-timed-out commit: the participant's commit record lands (the
   0->1 request leg is up) but the reply leg is cut, so the coordinator
   sees Rpc_timeout after the version was decided.  The idempotence guard
   finds every participant durable and reports Committed without retrying
   — the increment is applied exactly once. *)
let test_idempotence_guard () =
  let config =
    {
      Config.default with
      read_service_time = 1.0;
      write_service_time = 1.0;
      (* A real disk force on the commit record widens the window between
         the participant's commit landing and its reply being sent. *)
      disk_force_latency = 5.0;
      rpc_timeout = 8.0;
      max_retries = 3;
      retry_backoff_base = 1.0;
    }
  in
  let engine = Sim.Engine.create ~seed:13L () in
  let db : int Cluster.t =
    Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
      ~nodes:2 ()
  in
  Cluster.load db ~node:1 [ ("k", 100) ];
  let net = Cluster.network db in
  let outcome = ref None in
  Sim.Engine.schedule engine ~name:"txn" ~delay:1.0 (fun () ->
      let s = Session.create db ~seed:4L ~coordinators:[ 0 ] in
      let r =
        Session.txn s (fun c ->
            Session.rmw c ~node:1 "k" (function
              | None -> 1
              | Some v -> v + 1);
            (* Cut the reply leg once the prepare round is over but before
               the participant's commit reply (delayed by the disk force)
               gets out; heal well after the timeout has fired. *)
            let cut = 6.0 in
            Sim.Engine.schedule engine ~delay:cut (fun () ->
                Net.Network.set_link_down net ~src:1 ~dst:0 true);
            Sim.Engine.schedule engine ~delay:(cut +. 30.0) (fun () ->
                Net.Network.set_link_down net ~src:1 ~dst:0 false))
      in
      outcome := Some r);
  Sim.Engine.run engine;
  (match !outcome with
  | Some (Session.Committed cm) ->
      (* The guard reported the truth without burning a retry. *)
      check_int "single attempt" 1 cm.Session.attempts
  | Some (Session.Failed { last; _ }) ->
      Alcotest.failf "guard missed a durable commit: %s"
        (match last with
        | Session.Aborted r -> Ava3.Txn_core.pp_reason r
        | Session.Root_down n -> Printf.sprintf "root %d down" n)
  | None -> Alcotest.fail "transaction never finished");
  check_bool "applied exactly once" true (visible db ~node:1 "k" = Some 101);
  no_msgs "quiescent" (Cluster.check_quiescent_invariants db)

(* {1 The oracle suite} *)

let extract v = Printf.sprintf "a%03d" (((v mod 1000) + 1000) mod 1000)

(* Mirror of the recording harness in lib/check/scenarios.ml, driven
   through the session layer: committed transactions record what each
   tracked RMW observed and wrote; queries record their snapshots; the
   Theorem 6.2 replay verifies the lot.  Ops inside expect-abort scopes
   are deliberately untracked — their effects must vanish with the scope,
   so recording them would itself be a bug. *)
let transform ~salt old = ((Option.value old ~default:0 * 31) + salt) mod 100_003

let oracle_run ~seed ~gc_renumber =
  let label = Printf.sprintf "seed %Ld, gc_renumber %b" seed gc_renumber in
  let engine = Sim.Engine.create ~seed () in
  let nodes = 3 and keys = 8 in
  let config =
    {
      Config.default with
      gc_renumber;
      rpc_timeout = 15.0;
      advancement_retry = 25.0;
      max_retries = 3;
      retry_backoff_base = 4.0;
    }
  in
  (* The index rides along so every invariant probe audits index<->base
     through the session layer's retries and savepoint rollbacks. *)
  let db : int Cluster.t =
    Cluster.create ~engine ~config ~index:extract ~nodes ()
  in
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  (* Two disjoint key populations: "n<i>-k<j>" carries the recorded
     serializable history; the DSL namespace "k<i>_<j>" absorbs the
     generated programs (whose ops are not recorded, so they must not
     touch the replayed keys). *)
  let skeys = ref [] in
  for n = 0 to nodes - 1 do
    let named = List.init keys (fun i -> (Printf.sprintf "n%d-k%d" n i, i)) in
    Cluster.load db ~node:n named;
    Cluster.load db ~node:n
      (List.init keys (fun i -> (Session.Dsl.gen_key ~node:n i, i)));
    skeys := !skeys @ List.map (fun (k, _) -> (n, k)) named
  done;
  let keys_list = !skeys in
  let initial = List.map (fun (n, k) -> ((n, k), List.assoc k (List.init keys (fun i -> (Printf.sprintf "n%d-k%d" n i, i)))))
      keys_list
  in
  let horizon = 360.0 in
  let plan =
    Net.Nemesis.random_plan ~rng ~nodes ~horizon:(horizon *. 0.7) ~crashes:1
      ~partitions:1 ~slow_links:1 ~min_duration:20.0 ~max_duration:40.0
      ~extra_latency:2.0 ()
  in
  Net.Nemesis.install ~engine (Cluster.nemesis_target db) plan;
  let committed = ref [] and queries = ref [] and violations = ref [] in
  (* Recorded session transactions: tracked RMWs outside scopes, a
     sprinkle of expect-abort scopes with untracked ops inside. *)
  for u = 0 to 17 do
    Sim.Engine.schedule engine
      ~delay:(Sim.Rng.float rng (horizon *. 0.85))
      (fun () ->
        let s =
          Session.create db ~seed:(Int64.of_int (1000 + u))
        in
        let nops = 1 + Sim.Rng.int rng 2 in
        let targets =
          List.init nops (fun _ ->
              let n = Sim.Rng.int rng nodes in
              (n, Printf.sprintf "n%d-k%d" n (Sim.Rng.int rng keys)))
        in
        let scope_target =
          let n = Sim.Rng.int rng nodes in
          (n, Printf.sprintf "n%d-k%d" n (Sim.Rng.int rng keys))
        in
        let with_scope = u mod 3 = 0 in
        let observed = Queue.create () in
        match
          Session.txn s (fun c ->
              (* Retries re-run the function: restart the observation log
                 so only the committing attempt is recorded. *)
              Queue.clear observed;
              List.iteri
                (fun i (n, k) ->
                  Session.rmw c ~node:n k (fun old ->
                      let v = transform ~salt:((u * 10) + i) old in
                      Queue.push ((n, k), old, v) observed;
                      v))
                targets;
              if with_scope then
                let n, k = scope_target in
                match
                  Session.nested c (fun () ->
                      Session.rmw c ~node:n k (fun old ->
                          transform ~salt:999 old);
                      raise Session.Rollback)
                with
                | Error `Rolled_back -> ()
                | Ok () -> Alcotest.fail "scope must roll back"
                | Error `Deadlock -> raise (Ava3.Subtxn.Txn_abort `Deadlock))
        with
        | Session.Committed cm ->
            committed :=
              {
                SC.t_version = cm.Session.final_version;
                t_finished = cm.Session.finished_at;
                t_commit_at = cm.Session.participants;
                t_ops =
                  Queue.fold
                    (fun acc (key, old, v) -> SC.Rmw (key, old, v) :: acc)
                    [] observed
                  |> List.rev;
              }
              :: !committed
        | Session.Failed { durable; version; _ } ->
            (* The crash-partial edge: participants in [durable] hold
               their commit records for good even though the transaction
               failed, so the replay must account for the ops living at
               those homes (a node died mid-commit-round and lost the
               rest). *)
            if durable <> [] then begin
              let homes = List.map fst durable in
              (* The writes became visible when the last durable
                 participant finalized, not when the client learned the
                 transaction had failed — order the replay by the former. *)
              let last_commit =
                List.fold_left (fun a (_, at) -> Float.max a at) 0.0 durable
              in
              committed :=
                {
                  SC.t_version = version;
                  t_finished = last_commit;
                  t_commit_at = durable;
                  t_ops =
                    Queue.fold
                      (fun acc (((n, _) as key), old, v) ->
                        if List.mem n homes then SC.Rmw (key, old, v) :: acc
                        else acc)
                      [] observed
                    |> List.rev;
                }
                :: !committed
            end)
  done;
  (* Recorded queries through the session's pooled, retrying path. *)
  for q = 0 to 9 do
    Sim.Engine.schedule engine
      ~delay:(Sim.Rng.float rng (horizon *. 0.95))
      (fun () ->
        let s = Session.create db ~seed:(Int64.of_int (2000 + q)) in
        let reads =
          List.init
            (1 + Sim.Rng.int rng 3)
            (fun _ ->
              let n = Sim.Rng.int rng nodes in
              (n, Printf.sprintf "n%d-k%d" n (Sim.Rng.int rng keys)))
        in
        match Session.query s ~reads with
        | Ok (r : int Ava3.Query_exec.result) ->
            queries :=
              {
                SC.q_version = r.Ava3.Query_exec.version;
                q_reads =
                  List.map (fun (n, k, v) -> ((n, k), v)) r.Ava3.Query_exec.values;
              }
              :: !queries
        | Error _ -> ())
  done;
  (* DSL-generated programs over the disjoint namespace: savepoint scopes,
     expect-abort rollbacks and automatic retries racing everything. *)
  let dsl_summary = ref Session.Dsl.empty_summary in
  for i = 0 to 1 do
    let prog = Session.Dsl.gen ~rng ~nodes ~keys_per_node:keys ~txns:4 in
    Sim.Engine.schedule engine
      ~delay:(Sim.Rng.float rng (horizon *. 0.5))
      (fun () ->
        let s = Session.create db ~seed:(Int64.of_int (3000 + i)) in
        dsl_summary :=
          Session.Dsl.add_summary !dsl_summary (Session.Dsl.run s prog))
  done;
  (* Advancement beats from the first alive node. *)
  for b = 1 to int_of_float (horizon /. 45.0) do
    Sim.Engine.schedule engine
      ~delay:(float_of_int b *. 45.0)
      (fun () ->
        let rec first_alive k =
          if k >= nodes then None
          else if Node_state.alive (Cluster.node db k) then Some k
          else first_alive (k + 1)
        in
        match first_alive 0 with
        | Some k -> ignore (Cluster.advance db ~coordinator:k)
        | None -> ())
  done;
  (* Invariant probes (index<->base included) throughout the run. *)
  for p = 0 to 23 do
    Sim.Engine.schedule engine
      ~delay:(float_of_int p *. 15.0)
      (fun () -> violations := Cluster.check_invariants db @ !violations)
  done;
  Sim.Engine.run engine;
  Alcotest.(check (list string)) (label ^ ": no invariant violations") []
    !violations;
  no_msgs (label ^ ": quiescent invariants")
    (Cluster.check_quiescent_invariants db);
  (* Theorem 6.2 over the recorded session history. *)
  let cs = Cluster.state db in
  let history =
    {
      SC.committed = List.rev !committed;
      queries = List.rev !queries;
      initial;
      final_visible =
        List.map
          (fun ((n, k) as key) ->
            ( key,
              Vstore.Store.read_le
                (Node_state.store
                   (Cluster.node db (Ava3.Cluster_state.home_site cs n)))
                k max_int ))
          keys_list;
    }
  in
  Alcotest.(check (list string)) (label ^ ": serializable") []
    (SC.verify history).SC.errors;
  check_bool (label ^ ": some recorded commits") true (!committed <> []);
  check_bool (label ^ ": dsl programs ran") true
    ((!dsl_summary).Session.Dsl.committed + (!dsl_summary).Session.Dsl.failed
    > 0)

let test_oracle () =
  List.iter
    (fun gc_renumber ->
      for s = 1 to 10 do
        oracle_run ~seed:(Int64.of_int (500 + s)) ~gc_renumber
      done)
    [ false; true ]

(* Disabling retries two ways — the per-call [~retries:0] override against
   a [max_retries = 0] config — must give byte-identical runs: same
   outcomes, same final stores, same virtual end time.  The override draws
   no extra randomness by construction. *)
let test_retries_disabled_byte_equal () =
  let run ~use_override seed =
    let config =
      if use_override then Config.default
      else { Config.default with max_retries = 0 }
    in
    let engine = Sim.Engine.create ~seed () in
    let db : int Cluster.t =
      Cluster.create ~engine ~config ~latency:(Net.Latency.Constant 1.0)
        ~nodes:3 ()
    in
    for n = 0 to 2 do
      Cluster.load db ~node:n
        (List.init 6 (fun i -> (Printf.sprintf "n%d-k%d" n i, i)))
    done;
    (* A mid-run crash induces failures, which is where a retry would
       change the timeline if either path took one. *)
    Sim.Engine.schedule engine ~delay:30.0 (fun () -> Cluster.crash db ~node:2);
    Sim.Engine.schedule engine ~delay:90.0 (fun () ->
        Cluster.recover db ~node:2);
    let outcomes = ref [] in
    let record o =
      outcomes :=
        (match o with
        | Session.Committed cm ->
            `C (cm.Session.txn_id, cm.Session.final_version, cm.Session.reads)
        | Session.Failed { attempts; _ } -> `F attempts)
        :: !outcomes
    in
    for u = 0 to 9 do
      Sim.Engine.schedule engine
        ~delay:(5.0 +. (8.0 *. float_of_int u))
        (fun () ->
          let s = Session.create db ~seed:(Int64.of_int (100 + u)) in
          let n = u mod 3 in
          let k = Printf.sprintf "n%d-k%d" n (u mod 6) in
          let f c =
            Session.rmw c ~node:n k (fun old ->
                (Option.value old ~default:0 * 7) + u)
          in
          record
            (if use_override then Session.txn ~retries:0 s f
             else Session.txn s f))
    done;
    Sim.Engine.run engine;
    let dump =
      List.concat_map
        (fun n ->
          List.init 6 (fun i ->
              let k = Printf.sprintf "n%d-k%d" n i in
              (n, k, visible db ~node:n k)))
        [ 0; 1; 2 ]
    in
    (List.rev !outcomes, dump, Sim.Engine.now engine)
  in
  for s = 1 to 10 do
    let seed = Int64.of_int (700 + s) in
    let o1, d1, t1 = run ~use_override:true seed
    and o2, d2, t2 = run ~use_override:false seed in
    let label = Printf.sprintf "seed %Ld" seed in
    check_bool (label ^ ": outcomes byte-equal") true (o1 = o2);
    check_bool (label ^ ": final stores byte-equal") true (d1 = d2);
    check_bool (label ^ ": timelines byte-equal") true (t1 = t2)
  done

let () =
  Alcotest.run "session"
    [
      ( "savepoints",
        [
          Alcotest.test_case
            ("rollback restores write-set, " ^ scheme_name Wal.Scheme.No_undo)
            `Quick
            (test_rollback_restores_write_set Wal.Scheme.No_undo);
          Alcotest.test_case
            ("rollback restores write-set, " ^ scheme_name Wal.Scheme.Undo_redo)
            `Quick
            (test_rollback_restores_write_set Wal.Scheme.Undo_redo);
          Alcotest.test_case
            ("release merges, " ^ scheme_name Wal.Scheme.No_undo)
            `Quick
            (test_release_merges Wal.Scheme.No_undo);
          Alcotest.test_case
            ("release merges, " ^ scheme_name Wal.Scheme.Undo_redo)
            `Quick
            (test_release_merges Wal.Scheme.Undo_redo);
          Alcotest.test_case "rollback releases scope locks" `Quick
            test_rollback_releases_locks;
        ] );
      ( "retry",
        [
          Alcotest.test_case "budget exhaustion surfaces last error" `Quick
            test_budget_exhaustion;
          Alcotest.test_case "backoff determinism" `Quick
            test_backoff_determinism;
          Alcotest.test_case "acked-commit idempotence guard" `Quick
            test_idempotence_guard;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "10 seeds x both gc rules" `Quick test_oracle;
          Alcotest.test_case "retries disabled two ways, byte-equal" `Quick
            test_retries_disabled_byte_equal;
        ] );
    ]
