(* Unit and property tests for the discrete-event simulation kernel. *)

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Rng} *)

let test_rng_deterministic () =
  let a = Sim.Rng.create 42L and b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.bits64 a) (Sim.Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Sim.Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Sim.Rng.int r 10 in
    check_bool "in range" true (v >= 0 && v < 10);
    let f = Sim.Rng.float r 3.5 in
    check_bool "float range" true (f >= 0.0 && f < 3.5);
    let x = Sim.Rng.int_in r (-5) 5 in
    check_bool "int_in range" true (x >= -5 && x <= 5)
  done

let test_rng_split_independent () =
  let r = Sim.Rng.create 1L in
  let s = Sim.Rng.split r in
  let v1 = Sim.Rng.bits64 s in
  (* Drawing from the parent must not affect the child's future. *)
  let r' = Sim.Rng.create 1L in
  let s' = Sim.Rng.split r' in
  ignore (Sim.Rng.bits64 r' : int64);
  Alcotest.(check int64) "child stream stable" v1 (Sim.Rng.bits64 s')

let test_rng_exponential_mean () =
  let r = Sim.Rng.create 9L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential r ~mean:5.0
  done;
  let mean = !sum /. float_of_int n in
  check_bool "mean close to 5" true (abs_float (mean -. 5.0) < 0.25)

(* {1 Heap} *)

let test_heap_orders () =
  let h = Sim.Heap.create ~dummy:0 () in
  let r = Sim.Rng.create 3L in
  let n = 500 in
  for i = 1 to n do
    Sim.Heap.push h ~time:(Sim.Rng.float r 100.0) ~seq:i i
  done;
  let last = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Sim.Heap.pop h with
    | None -> ()
    | Some (t, _, _) ->
        check_bool "non-decreasing" true (t >= !last);
        last := t;
        incr count;
        drain ()
  in
  drain ();
  check_int "drained all" n !count

let test_heap_fifo_ties () =
  let h = Sim.Heap.create ~dummy:0 () in
  for i = 1 to 10 do
    Sim.Heap.push h ~time:1.0 ~seq:i i
  done;
  for i = 1 to 10 do
    match Sim.Heap.pop h with
    | Some (_, _, v) -> check_int "fifo at equal time" i v
    | None -> Alcotest.fail "heap empty early"
  done

(* Popped slots must not keep referencing their payloads: a long simulation
   would otherwise retain every dead event closure until its array slot
   happened to be overwritten by a later push. *)
let test_heap_pop_clears_slot () =
  let h = Sim.Heap.create ~dummy:(ref 0) () in
  let w = Weak.create 1 in
  (* Push and pop inside helpers so the payload is never rooted by this
     frame's locals — after [drain] returns, only the heap's backing array
     could still reference it. *)
  let fill () =
    let payload = ref 42 in
    Weak.set w 0 (Some payload);
    for i = 1 to 8 do
      Sim.Heap.push h ~time:(float_of_int i) ~seq:i
        (if i = 1 then payload else ref i)
    done
  in
  let drain () =
    (match Sim.Heap.pop h with
    | Some (_, _, p) -> check_int "popped payload" 42 !p
    | None -> Alcotest.fail "heap empty early");
    (* The slot vacated by the pop (old last position) is scrubbed. *)
    check_bool "vacated slot scrubbed" true (Sim.Heap.slot_is_vacant h 7);
    for _ = 1 to 7 do
      ignore (Sim.Heap.pop h)
    done
  in
  fill ();
  drain ();
  (* Fully drained: every backing slot is vacant, including the root. *)
  for i = 0 to 15 do
    check_bool (Printf.sprintf "slot %d vacant after drain" i) true
      (Sim.Heap.slot_is_vacant h i)
  done;
  (* And the payload really is collectable: only [h] could still hold it. *)
  Gc.full_major ();
  check_bool "popped payload collected" true (Weak.get w 0 = None)

(* {1 Engine} *)

let test_sleep_ordering () =
  let e = Sim.Engine.create () in
  let order = ref [] in
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.sleep 10.0;
      order := "b" :: !order);
  Sim.Engine.spawn e (fun () ->
      Sim.Engine.sleep 5.0;
      order := "a" :: !order);
  Sim.Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (List.rev !order);
  check_float "clock at last event" 10.0 (Sim.Engine.now e)

let test_run_until () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  Sim.Engine.schedule e ~delay:1.0 (fun () -> incr hits);
  Sim.Engine.schedule e ~delay:2.0 (fun () -> incr hits);
  Sim.Engine.schedule e ~delay:50.0 (fun () -> incr hits);
  Sim.Engine.run ~until:10.0 e;
  check_int "only events before limit ran" 2 !hits;
  check_float "clock clamped" 10.0 (Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "remaining event ran" 3 !hits

let test_spawn_nested () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.spawn e (fun () ->
      log := "outer-start" :: !log;
      let eng = Sim.Engine.current () in
      Sim.Engine.spawn eng (fun () ->
          Sim.Engine.sleep 1.0;
          log := "inner" :: !log);
      Sim.Engine.sleep 2.0;
      log := "outer-end" :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list string))
    "interleaving" [ "outer-start"; "inner"; "outer-end" ] (List.rev !log)

let test_not_in_process () =
  Alcotest.check_raises "sleep outside" Sim.Engine.Not_in_process (fun () ->
      Sim.Engine.sleep 1.0)

let test_yield_fairness () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.spawn e (fun () ->
      log := 1 :: !log;
      Sim.Engine.yield ();
      log := 3 :: !log);
  Sim.Engine.spawn e (fun () -> log := 2 :: !log);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "yield lets peer run" [ 1; 2; 3 ] (List.rev !log)


let test_engine_stop () =
  let e = Sim.Engine.create () in
  let hits = ref 0 in
  for i = 1 to 10 do
    Sim.Engine.schedule e ~delay:(float_of_int i) (fun () ->
        incr hits;
        if i = 3 then Sim.Engine.stop e)
  done;
  Sim.Engine.run e;
  check_int "stopped after third event" 3 !hits;
  check_int "rest still queued" 7 (Sim.Engine.pending_events e);
  Sim.Engine.run e;
  check_int "resumable" 10 !hits

let test_negative_delay_clamped () =
  let e = Sim.Engine.create () in
  let at = ref nan in
  Sim.Engine.schedule e ~delay:(-5.0) (fun () -> at := Sim.Engine.now e);
  Sim.Engine.run e;
  check_float "clamped to now" 0.0 !at

let test_trace_toggle () =
  let e = Sim.Engine.create ~trace:false () in
  Sim.Engine.emit e ~tag:"t" "dropped";
  check_int "disabled trace records nothing" 0
    (List.length (Sim.Trace.entries (Sim.Engine.trace e)));
  Sim.Trace.set_enabled (Sim.Engine.trace e) true;
  Sim.Engine.emit e ~tag:"t" "kept";
  check_int "enabled trace records" 1
    (List.length (Sim.Trace.entries (Sim.Engine.trace e)));
  Sim.Trace.clear (Sim.Engine.trace e);
  check_int "clear empties" 0 (List.length (Sim.Trace.entries (Sim.Engine.trace e)))

let test_rng_shuffle_pick () =
  let r = Sim.Rng.create 11L in
  let a = Array.init 50 (fun i -> i) in
  let before = Array.copy a in
  Sim.Rng.shuffle r a;
  check_bool "permutation" true
    (List.sort compare (Array.to_list a) = Array.to_list before);
  check_bool "actually shuffled" true (a <> before);
  for _ = 1 to 100 do
    let v = Sim.Rng.pick r a in
    check_bool "picked member" true (Array.exists (fun x -> x = v) a)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Sim.Rng.pick r [||]))

let test_rng_copy_diverges_from_parent () =
  let r = Sim.Rng.create 13L in
  let c = Sim.Rng.copy r in
  Alcotest.(check int64) "copies start equal" (Sim.Rng.bits64 r) (Sim.Rng.bits64 c);
  ignore (Sim.Rng.bits64 r);
  (* c is now one draw behind; streams have diverged. *)
  check_bool "independent evolution" true (Sim.Rng.bits64 r <> Sim.Rng.bits64 c)

let test_suspended_count_tracks () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create () in
  for _ = 1 to 3 do
    Sim.Engine.spawn e (fun () -> Sim.Condition.await c)
  done;
  Sim.Engine.schedule e ~delay:1.0 (fun () ->
      check_int "three parked" 3 (Sim.Engine.suspended_count e);
      Sim.Condition.broadcast c);
  Sim.Engine.run e;
  check_int "all resumed" 0 (Sim.Engine.suspended_count e)

(* {1 Condition} *)

let test_condition_signal () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create () in
  let woke = ref [] in
  for i = 1 to 3 do
    Sim.Engine.spawn e (fun () ->
        Sim.Condition.await c;
        woke := i :: !woke)
  done;
  Sim.Engine.schedule e ~delay:1.0 (fun () -> Sim.Condition.signal c);
  Sim.Engine.schedule e ~delay:2.0 (fun () -> Sim.Condition.broadcast c);
  Sim.Engine.run e;
  Alcotest.(check (list int)) "fifo then rest" [ 1; 2; 3 ] (List.rev !woke)

let test_condition_await_until () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create () in
  let flag = ref false in
  let done_ = ref false in
  Sim.Engine.spawn e (fun () ->
      Sim.Condition.await_until c ~pred:(fun () -> !flag);
      done_ := true);
  (* Spurious broadcast: predicate still false, waiter must re-park. *)
  Sim.Engine.schedule e ~delay:1.0 (fun () -> Sim.Condition.broadcast c);
  Sim.Engine.schedule e ~delay:2.0 (fun () ->
      flag := true;
      Sim.Condition.broadcast c);
  Sim.Engine.run e;
  check_bool "woke after predicate" true !done_

let test_condition_timeout () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create () in
  let outcome = ref `Signaled in
  Sim.Engine.spawn e (fun () ->
      outcome := Sim.Condition.await_timeout c ~timeout:5.0);
  Sim.Engine.run e;
  check_bool "timed out" true (!outcome = `Timeout);
  check_float "time advanced to timeout" 5.0 (Sim.Engine.now e)

let test_condition_timeout_signal_first () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create () in
  let outcome = ref `Timeout in
  Sim.Engine.spawn e (fun () ->
      outcome := Sim.Condition.await_timeout c ~timeout:5.0);
  Sim.Engine.schedule e ~delay:1.0 (fun () -> Sim.Condition.signal c);
  Sim.Engine.run e;
  check_bool "signaled" true (!outcome = `Signaled)

let test_dead_waiter_does_not_eat_signal () =
  let e = Sim.Engine.create () in
  let c = Sim.Condition.create () in
  let first = ref `Signaled and second = ref false in
  Sim.Engine.spawn e (fun () ->
      first := Sim.Condition.await_timeout c ~timeout:1.0);
  Sim.Engine.spawn e (fun () ->
      Sim.Condition.await c;
      second := true);
  (* Signal after the first waiter timed out: must reach the second. *)
  Sim.Engine.schedule e ~delay:2.0 (fun () -> Sim.Condition.signal c);
  Sim.Engine.run e;
  check_bool "first timed out" true (!first = `Timeout);
  check_bool "second woke" true !second

(* {1 Trace} *)

let test_trace_records () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~delay:3.0 (fun () ->
      Sim.Engine.emit e ~tag:"t" "hello");
  Sim.Engine.run e;
  match Sim.Trace.find (Sim.Engine.trace e) ~tag:"t" with
  | [ entry ] ->
      check_float "stamped with virtual time" 3.0 entry.Sim.Trace.time;
      Alcotest.(check string) "message" "hello" entry.Sim.Trace.message
  | _ -> Alcotest.fail "expected exactly one entry"

let test_trace_capacity () =
  let tr = Sim.Trace.create ~capacity:3 () in
  for i = 1 to 10 do
    Sim.Trace.emit tr ~time:(float_of_int i) ~tag:"t" (string_of_int i)
  done;
  let entries = Sim.Trace.entries tr in
  check_int "keeps only newest capacity entries" 3 (List.length entries);
  Alcotest.(check (list string))
    "the newest three, oldest first" [ "8"; "9"; "10" ]
    (List.map (fun e -> e.Sim.Trace.message) entries);
  check_int "dropped counts the discarded" 7 (Sim.Trace.dropped tr);
  Sim.Trace.clear tr;
  check_int "clear resets dropped" 0 (Sim.Trace.dropped tr);
  check_int "clear empties" 0 (List.length (Sim.Trace.entries tr))

let test_trace_set_capacity () =
  let tr = Sim.Trace.create () in
  for i = 1 to 5 do
    Sim.Trace.emit tr ~time:(float_of_int i) ~tag:"t" (string_of_int i)
  done;
  Sim.Trace.set_capacity tr (Some 2);
  Alcotest.(check (list string))
    "retroactively bounded" [ "4"; "5" ]
    (List.map (fun e -> e.Sim.Trace.message) (Sim.Trace.entries tr))

(* {1 Rng.fork_named} *)

let test_fork_named_stable () =
  let a = Sim.Rng.create 42L in
  let f1 = Sim.Rng.fork_named a "alpha" in
  (* Advance the parent arbitrarily: the fork must not depend on it. *)
  for _ = 1 to 17 do
    ignore (Sim.Rng.bits64 a : int64)
  done;
  let f2 = Sim.Rng.fork_named a "alpha" in
  Alcotest.(check int64)
    "same label, same stream regardless of parent position"
    (Sim.Rng.bits64 f1) (Sim.Rng.bits64 f2);
  let g = Sim.Rng.fork_named a "beta" in
  check_bool "distinct labels diverge" false
    (Int64.equal (Sim.Rng.bits64 f1) (Sim.Rng.bits64 g))

let test_fork_named_leaves_parent () =
  let a = Sim.Rng.create 7L and b = Sim.Rng.create 7L in
  ignore (Sim.Rng.fork_named a "x" : Sim.Rng.t);
  Alcotest.(check int64)
    "forking does not advance the parent" (Sim.Rng.bits64 b)
    (Sim.Rng.bits64 a)

(* {1 Engine chooser} *)

let test_chooser_tie_orders () =
  (* Two named processes racing at the same instant: the chooser's answer
     decides who runs first, and unchosen events keep their order. *)
  let run_with pick =
    let e = Sim.Engine.create () in
    let log = Buffer.create 16 in
    Sim.Engine.set_chooser e
      (Some
         (function
         | Sim.Engine.Tie { labels } when Array.length labels = 2 -> pick
         | _ -> 0));
    Sim.Engine.schedule e ~name:"a" ~delay:1.0 (fun () ->
        Buffer.add_string log "a");
    Sim.Engine.schedule e ~name:"b" ~delay:1.0 (fun () ->
        Buffer.add_string log "b");
    Sim.Engine.run e;
    Buffer.contents log
  in
  Alcotest.(check string) "default order" "ab" (run_with 0);
  Alcotest.(check string) "flipped order" "ba" (run_with 1);
  Alcotest.(check string) "out of range falls back" "ab" (run_with 99)

let test_chooser_program_order () =
  (* Two events of the SAME named process at one instant are never
     offered as a tie: program order is not a scheduling choice. *)
  let e = Sim.Engine.create () in
  let ties = ref 0 in
  Sim.Engine.set_chooser e
    (Some
       (fun _ ->
         incr ties;
         0));
  let log = Buffer.create 16 in
  Sim.Engine.schedule e ~name:"p" ~delay:1.0 (fun () ->
      Buffer.add_string log "1");
  Sim.Engine.schedule e ~name:"p" ~delay:1.0 (fun () ->
      Buffer.add_string log "2");
  Sim.Engine.run e;
  Alcotest.(check string) "program order kept" "12" (Buffer.contents log);
  check_int "no tie offered" 0 !ties

let test_branch_without_chooser () =
  let e = Sim.Engine.create () in
  check_int "branch defaults to 0" 0 (Sim.Engine.branch e ~label:"b" 5);
  Sim.Engine.set_chooser e
    (Some (function Sim.Engine.Branch { arity; _ } -> arity - 1 | _ -> 0));
  check_int "chooser answers branch" 4 (Sim.Engine.branch e ~label:"b" 5)

let test_pending_summary () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~name:"z" ~delay:2.0 (fun () -> ());
  Sim.Engine.schedule e ~delay:1.0 (fun () -> ());
  Alcotest.(check (list (pair (float 1e-9) (option string))))
    "sorted (time, label) summary"
    [ (1.0, None); (2.0, Some "z") ]
    (Sim.Engine.pending_summary e)

(* {1 Properties} *)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"engine runs are deterministic under a seed"
    ~count:50
    QCheck.(pair (int_bound 1000) small_int)
    (fun (seed, nproc) ->
      let run_once () =
        let e = Sim.Engine.create ~seed:(Int64.of_int seed) () in
        let r = Sim.Rng.split (Sim.Engine.rng e) in
        let log = Buffer.create 64 in
        for i = 0 to min nproc 20 do
          let delay = Sim.Rng.float r 100.0 in
          Sim.Engine.schedule e ~delay (fun () ->
              Buffer.add_string log (Printf.sprintf "%d@%f;" i (Sim.Engine.now e)))
        done;
        Sim.Engine.run e;
        Buffer.contents log
      in
      String.equal (run_once ()) (run_once ()))

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap pops in key order" ~count:200
    QCheck.(list (pair (float_bound_inclusive 1000.0) small_int))
    (fun items ->
      let h = Sim.Heap.create ~dummy:0 () in
      List.iteri (fun i (t, v) -> Sim.Heap.push h ~time:t ~seq:i v) items;
      let rec drain last acc =
        match Sim.Heap.pop h with
        | None -> acc
        | Some (t, _, _) -> t >= last && drain t acc
      in
      drain neg_infinity true)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle and pick" `Quick test_rng_shuffle_pick;
          Alcotest.test_case "copy diverges" `Quick test_rng_copy_diverges_from_parent;
          Alcotest.test_case "fork_named stable" `Quick test_fork_named_stable;
          Alcotest.test_case "fork_named leaves parent" `Quick
            test_fork_named_leaves_parent;
        ] );
      ( "heap",
        [
          Alcotest.test_case "orders" `Quick test_heap_orders;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "pop clears slot" `Quick test_heap_pop_clears_slot;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sleep ordering" `Quick test_sleep_ordering;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "spawn nested" `Quick test_spawn_nested;
          Alcotest.test_case "not in process" `Quick test_not_in_process;
          Alcotest.test_case "yield fairness" `Quick test_yield_fairness;
          Alcotest.test_case "stop and resume" `Quick test_engine_stop;
          Alcotest.test_case "negative delay clamped" `Quick
            test_negative_delay_clamped;
          Alcotest.test_case "suspended count" `Quick test_suspended_count_tracks;
          Alcotest.test_case "chooser tie orders" `Quick test_chooser_tie_orders;
          Alcotest.test_case "chooser keeps program order" `Quick
            test_chooser_program_order;
          Alcotest.test_case "branch without chooser" `Quick
            test_branch_without_chooser;
          Alcotest.test_case "pending summary" `Quick test_pending_summary;
        ] );
      ( "condition",
        [
          Alcotest.test_case "signal and broadcast" `Quick test_condition_signal;
          Alcotest.test_case "await_until" `Quick test_condition_await_until;
          Alcotest.test_case "timeout" `Quick test_condition_timeout;
          Alcotest.test_case "signal before timeout" `Quick
            test_condition_timeout_signal_first;
          Alcotest.test_case "dead waiter skipped" `Quick
            test_dead_waiter_does_not_eat_signal;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records" `Quick test_trace_records;
          Alcotest.test_case "toggle and clear" `Quick test_trace_toggle;
          Alcotest.test_case "capacity ring" `Quick test_trace_capacity;
          Alcotest.test_case "set_capacity retroactive" `Quick
            test_trace_set_capacity;
        ] );
      ("properties", qc [ prop_engine_deterministic; prop_heap_sorted ]);
    ]
