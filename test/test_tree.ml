(* Tests for the R*-style tree executors: concurrent subtransactions with
   bottom-up prepared propagation, and concurrent subquery trees. *)

module Cluster = Ava3.Cluster
module Tree = Ava3.Tree_txn
module Tq = Ava3.Tree_query
module Update = Ava3.Update_exec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let vopt = Alcotest.(option int)

let with_cluster ?config ?(nodes = 5) ?(seed = 11L) body =
  let engine = Sim.Engine.create ~seed () in
  let db : int Cluster.t = Cluster.create ~engine ?config ~nodes () in
  Sim.Engine.spawn engine (fun () -> body db);
  Sim.Engine.run engine;
  db

let committed = function
  | Tree.Committed c -> c
  | Tree.Aborted _ -> Alcotest.fail "expected tree commit"
  | Tree.Root_down _ -> Alcotest.fail "expected tree commit, got root-down"

(* {1 Basic tree execution} *)

let test_tree_commit_across_nodes () =
  let db =
    with_cluster (fun db ->
        for n = 0 to 4 do
          Cluster.load db ~node:n [ (Printf.sprintf "k%d" n, n) ]
        done;
        let plan =
          {
            Tree.at = 0;
            work = [ Tree.Write ("k0", 100) ];
            children =
              [
                {
                  Tree.at = 1;
                  work = [ Tree.Write ("k1", 101); Tree.Read "k1" ];
                  children =
                    [
                      { Tree.at = 3; work = [ Tree.Write ("k3", 103) ]; children = [] };
                      { Tree.at = 4; work = [ Tree.Read "k4" ]; children = [] };
                    ];
                };
                { Tree.at = 2; work = [ Tree.Write ("k2", 102) ]; children = [] };
              ];
          }
        in
        let c = committed (Cluster.run_tree_update db ~plan) in
        check_int "version 1" 1 c.Tree.final_version;
        (* Reads: own-write at node 1 and preloaded value at node 4. *)
        check_bool "read own write" true
          (List.mem (1, "k1", Some 101) c.Tree.reads);
        check_bool "read preloaded" true (List.mem (4, "k4", Some 4) c.Tree.reads);
        (* Publish and verify all writes landed. *)
        ignore (Cluster.advance_and_wait db ~coordinator:2);
        let q =
          Cluster.run_query db ~root:3
            ~reads:[ (0, "k0"); (1, "k1"); (2, "k2"); (3, "k3") ]
        in
        List.iter2
          (fun (_, _, got) expected ->
            Alcotest.check vopt "committed write" (Some expected) got)
          q.Ava3.Query_exec.values [ 100; 101; 102; 103 ])
  in
  Alcotest.(check (list string)) "invariants" [] (Cluster.check_invariants db)

let test_tree_children_run_concurrently () =
  (* Two children each pausing 50 units: a concurrent tree finishes in ~50,
     not ~100. *)
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:1 [ ("a", 1) ];
        Cluster.load db ~node:2 [ ("b", 2) ];
        let eng = Sim.Engine.current () in
        let t0 = Sim.Engine.now eng in
        let plan =
          {
            Tree.at = 0;
            work = [];
            children =
              [
                { Tree.at = 1; work = [ Tree.Write ("a", 10); Tree.Pause 50.0 ]; children = [] };
                { Tree.at = 2; work = [ Tree.Write ("b", 20); Tree.Pause 50.0 ]; children = [] };
              ];
          }
        in
        ignore (committed (Cluster.run_tree_update db ~plan));
        let elapsed = Sim.Engine.now eng -. t0 in
        check_bool "parallel children" true (elapsed < 80.0))
  in
  ignore db

let test_tree_rejects_duplicate_nodes () =
  let _ =
    with_cluster (fun db ->
        let plan =
          {
            Tree.at = 0;
            work = [];
            children = [ { Tree.at = 0; work = []; children = [] } ];
          }
        in
        match Cluster.run_tree_update db ~plan with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "duplicate node accepted")
  in
  ()

let test_tree_version_mismatch_repair () =
  (* The root runs in version 1; a child lands on a node that has already
     advanced to 2.  The prepared max is 2 and the root repairs itself at
     commit time. *)
  let config =
    { Ava3.Config.default with read_service_time = 0.0; write_service_time = 0.0 }
  in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("a", 1) ];
        Cluster.load db ~node:1 [ ("b", 2) ];
        (* Advance node 1 only. *)
        Net.Network.send (Cluster.network db) ~src:2 ~dst:1
          (Ava3.Messages.Advance_u { newu = 2 });
        Sim.Engine.sleep 5.0;
        let plan =
          {
            Tree.at = 0;
            work = [ Tree.Write ("a", 10) ];
            children = [ { Tree.at = 1; work = [ Tree.Write ("b", 20) ]; children = [] } ];
          }
        in
        let c = committed (Cluster.run_tree_update db ~plan) in
        check_int "committed at the max version" 2 c.Tree.final_version)
  in
  let stats = Cluster.stats db in
  check_bool "mismatch recorded" true (stats.Cluster.commit_version_mismatches >= 1);
  check_bool "commit-time moveToFuture at the root" true
    (stats.Cluster.mtf_commit_time >= 1)

let test_tree_abort_rolls_back_all_branches () =
  (* One branch deadlocks; every branch's writes must vanish. *)
  let config =
    { Ava3.Config.default with read_service_time = 0.0; write_service_time = 0.0 }
  in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:1 [ ("x", 1); ("y", 2) ];
        Cluster.load db ~node:2 [ ("z", 3) ];
        let eng = Sim.Engine.current () in
        (* A competing flat transaction takes y then x (opposite order). *)
        Sim.Engine.spawn eng (fun () ->
            ignore
              (Cluster.run_update db ~root:1
                 ~ops:
                   [
                     Update.Write { node = 1; key = "y"; value = 99 };
                     Update.Pause 10.0;
                     Update.Write { node = 1; key = "x"; value = 99 };
                   ]));
        Sim.Engine.sleep 2.0;
        let plan =
          {
            Tree.at = 0;
            work = [];
            children =
              [
                {
                  Tree.at = 1;
                  work = [ Tree.Write ("x", 5); Tree.Pause 5.0; Tree.Write ("y", 5) ];
                  children = [];
                };
                { Tree.at = 2; work = [ Tree.Write ("z", 5) ]; children = [] };
              ];
          }
        in
        (match Cluster.run_tree_update db ~plan with
        | Tree.Aborted { reason = `Deadlock; _ } -> ()
        | Tree.Aborted _ | Tree.Root_down _ ->
            Alcotest.fail "wrong abort reason"
        | Tree.Committed _ ->
            (* The deadlock victim could be the flat transaction instead;
               accept but verify data below either way. *)
            ());
        Sim.Engine.sleep 100.0;
        (* z must reflect either the tree's committed value or the original;
           never a torn write from an aborted branch. *)
        match
          Cluster.run_update db ~root:2 ~ops:[ Update.Read { node = 2; key = "z" } ]
        with
        | Update.Committed { reads = [ (_, Some z) ]; _ } ->
            check_bool "z consistent" true (z = 3 || z = 5)
        | _ -> Alcotest.fail "verification read failed")
  in
  Alcotest.(check (list string)) "invariants" [] (Cluster.check_invariants db)


let test_plan_nodes () =
  let plan =
    {
      Tree.at = 0;
      work = [];
      children =
        [
          { Tree.at = 2; work = []; children = [ { Tree.at = 3; work = []; children = [] } ] };
          { Tree.at = 1; work = []; children = [] };
        ];
    }
  in
  Alcotest.(check (list int)) "preorder" [ 0; 2; 3; 1 ] (Tree.plan_nodes plan)

let test_deep_tree () =
  (* A three-level chain: grandchild's prepared version propagates to the
     root through its parent. *)
  let db =
    with_cluster (fun db ->
        for n = 0 to 2 do
          Cluster.load db ~node:n [ (Printf.sprintf "k%d" n, n) ]
        done;
        (* Advance node 2 only, so the grandchild starts in version 2. *)
        Net.Network.send (Cluster.network db) ~src:0 ~dst:2
          (Ava3.Messages.Advance_u { newu = 2 });
        Sim.Engine.sleep 5.0;
        let plan =
          {
            Tree.at = 0;
            work = [ Tree.Write ("k0", 10) ];
            children =
              [
                {
                  Tree.at = 1;
                  work = [ Tree.Write ("k1", 11) ];
                  children =
                    [ { Tree.at = 2; work = [ Tree.Write ("k2", 12) ]; children = [] } ];
                };
              ];
          }
        in
        let c = committed (Cluster.run_tree_update db ~plan) in
        check_int "grandchild version wins" 2 c.Tree.final_version)
  in
  Alcotest.(check (list string)) "invariants" [] (Cluster.check_invariants db)

(* {1 Tree queries} *)

let test_tree_query_composes () =
  let db =
    with_cluster (fun db ->
        for n = 0 to 4 do
          Cluster.load db ~node:n [ (Printf.sprintf "k%d" n, n * 10) ]
        done;
        let plan =
          Tq.reads 0 [ "k0" ]
            [
              Tq.reads 1 [ "k1" ] [ Tq.reads 3 [ "k3" ] [] ];
              Tq.reads 2 [ "k2" ] [];
            ]
        in
        let q = Cluster.run_tree_query db ~plan in
        check_int "version 0" 0 q.Ava3.Query_exec.version;
        let expected = [ (0, "k0", Some 0); (1, "k1", Some 10); (3, "k3", Some 30); (2, "k2", Some 20) ] in
        List.iter
          (fun e -> check_bool "value present" true (List.mem e q.Ava3.Query_exec.values))
          expected;
        check_int "four values" 4 (List.length q.Ava3.Query_exec.values))
  in
  let stats = Cluster.stats db in
  check_int "queries take no locks" 0 stats.Cluster.lock_waits

let test_tree_query_counters_drain () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:1 [ ("k1", 1) ];
        let plan = Tq.reads 0 [] [ Tq.reads 1 [ "k1" ] [] ] in
        ignore (Cluster.run_tree_query db ~plan);
        for n = 0 to 1 do
          check_int "counter drained"
            0
            (Ava3.Node_state.query_count (Cluster.node db n) ~version:0)
        done;
        (* Advancement still completes — nothing leaked. *)
        match Cluster.advance_and_wait db ~coordinator:0 with
        | `Completed _ -> ()
        | `Busy -> Alcotest.fail "advancement blocked")
  in
  ignore db

let test_tree_query_blocks_gc_until_done () =
  (* A slow subquery tree must hold Phase 2 back, exactly like flat
     queries. *)
  let config = { Ava3.Config.default with read_service_time = 1.0 } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:1
          (List.init 30 (fun i -> (Printf.sprintf "k%d" i, i)));
        let eng = Sim.Engine.current () in
        let query_done = ref infinity and advanced = ref infinity in
        Sim.Engine.spawn eng (fun () ->
            let plan =
              Tq.reads 0 []
                [ Tq.reads 1 (List.init 30 (fun i -> Printf.sprintf "k%d" i)) [] ]
            in
            ignore (Cluster.run_tree_query db ~plan);
            query_done := Sim.Engine.now eng);
        Sim.Engine.schedule eng ~delay:5.0 (fun () ->
            match Cluster.advance_and_wait db ~coordinator:2 with
            | `Completed _ -> advanced := Sim.Engine.now eng
            | `Busy -> Alcotest.fail "busy");
        Sim.Engine.sleep 300.0;
        check_bool "gc waited for the subquery tree" true (!advanced > !query_done))
  in
  ignore db

let test_tree_query_node_down () =
  let _ =
    with_cluster (fun db ->
        Cluster.load db ~node:1 [ ("k1", 1) ];
        Cluster.crash db ~node:1;
        let plan = Tq.reads 0 [] [ Tq.reads 1 [ "k1" ] [] ] in
        (match Cluster.run_tree_query db ~plan with
        | exception Net.Network.Node_down 1 -> ()
        | _ -> Alcotest.fail "expected Node_down");
        (* Root counter must not leak even on failure. *)
        check_int "root counter drained" 0
          (Ava3.Node_state.query_count (Cluster.node db 0) ~version:0))
  in
  ()

(* {1 Equivalence with the flat executor} *)

let prop_tree_matches_flat =
  QCheck.Test.make ~name:"tree and flat executors commit the same data"
    ~count:40
    QCheck.(pair (int_bound 10_000) (int_range 1 4))
    (fun (seed, fanout) ->
      let run use_tree =
        let engine = Sim.Engine.create ~seed:(Int64.of_int seed) ~trace:false () in
        let db : int Cluster.t = Cluster.create ~engine ~nodes:(fanout + 1) () in
        for n = 0 to fanout do
          Cluster.load db ~node:n [ (Printf.sprintf "k%d" n, n) ]
        done;
        Sim.Engine.spawn engine (fun () ->
            if use_tree then
              let plan =
                {
                  Tree.at = 0;
                  work = [ Tree.Write ("k0", 1000) ];
                  children =
                    List.init fanout (fun i ->
                        {
                          Tree.at = i + 1;
                          work = [ Tree.Write (Printf.sprintf "k%d" (i + 1), 1000 + i) ];
                          children = [];
                        });
                }
              in
              ignore (Cluster.run_tree_update db ~plan)
            else
              ignore
                (Cluster.run_update db ~root:0
                   ~ops:
                     (Update.Write { node = 0; key = "k0"; value = 1000 }
                     :: List.init fanout (fun i ->
                            Update.Write
                              { node = i + 1; key = Printf.sprintf "k%d" (i + 1); value = 1000 + i })));
            ignore (Cluster.advance_and_wait db ~coordinator:0));
        Sim.Engine.run engine;
        List.init (fanout + 1) (fun n ->
            Vstore.Store.read_le
              (Ava3.Node_state.store (Cluster.node db n))
              (Printf.sprintf "k%d" n)
              max_int)
      in
      run true = run false)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "tree"
    [
      ( "updates",
        [
          Alcotest.test_case "commit across nodes" `Quick
            test_tree_commit_across_nodes;
          Alcotest.test_case "children run concurrently" `Quick
            test_tree_children_run_concurrently;
          Alcotest.test_case "rejects duplicate nodes" `Quick
            test_tree_rejects_duplicate_nodes;
          Alcotest.test_case "version mismatch repair" `Quick
            test_tree_version_mismatch_repair;
          Alcotest.test_case "abort rolls back branches" `Quick
            test_tree_abort_rolls_back_all_branches;
          Alcotest.test_case "plan nodes preorder" `Quick test_plan_nodes;
          Alcotest.test_case "deep tree version propagation" `Quick
            test_deep_tree;
        ] );
      ( "queries",
        [
          Alcotest.test_case "composes results" `Quick test_tree_query_composes;
          Alcotest.test_case "counters drain" `Quick test_tree_query_counters_drain;
          Alcotest.test_case "blocks gc until done" `Quick
            test_tree_query_blocks_gc_until_done;
          Alcotest.test_case "node down" `Quick test_tree_query_node_down;
        ] );
      ("equivalence", qc [ prop_tree_matches_flat ]);
    ]
