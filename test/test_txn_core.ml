(* Tests for the shared Txn_core / Query_core runtime behaviours that the
   executor drivers rely on: the Root_down rejection sentinel (flat and
   tree), the crash-path counter release in scans, and the tree
   executor's orphaned-dispatch guard. *)

module Cluster = Ava3.Cluster
module Node_state = Ava3.Node_state
module Update = Ava3.Update_exec
module Tree = Ava3.Tree_txn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_cluster ?config ?(nodes = 3) ?(seed = 11L) body =
  let engine = Sim.Engine.create ~seed () in
  let db : int Cluster.t = Cluster.create ~engine ?config ~nodes () in
  Sim.Engine.spawn engine (fun () -> body db);
  Sim.Engine.run engine;
  db

(* {1 Root_down sentinel} *)

(* Submitting to a dead root is a rejection, not an abort: no transaction
   id is allocated, nothing runs anywhere, and the metrics count it
   separately from aborts. *)
let test_root_down_flat () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("a", 0) ];
        Cluster.crash db ~node:1;
        (match
           Cluster.run_update db ~root:1
             ~ops:[ Update.Write { node = 0; key = "a"; value = 1 } ]
         with
        | Update.Root_down { root } -> check_int "rejecting root" 1 root
        | Update.Committed _ | Update.Aborted _ ->
            Alcotest.fail "expected Root_down");
        (* A live root still works after the rejection. *)
        match
          Cluster.run_update db ~root:0
            ~ops:[ Update.Write { node = 0; key = "a"; value = 2 } ]
        with
        | Update.Committed _ -> ()
        | Update.Aborted _ | Update.Root_down _ ->
            Alcotest.fail "expected commit at live root")
  in
  let m = Cluster.metrics db in
  check_int "one rejection" 1 (Sim.Metrics.total_root_down m);
  check_int "not counted as an abort" 0 (Sim.Metrics.total_aborts m);
  check_int "the live-root commit" 1 (Sim.Metrics.total_commits m);
  let at1 = List.nth (Cluster.metrics_snapshot db) 1 in
  check_int "attributed to the dead root" 1 at1.Sim.Metrics.root_down_rejections

let test_root_down_tree () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:1 [ ("b", 0) ];
        Cluster.crash db ~node:0;
        let plan =
          {
            Tree.at = 0;
            work = [];
            children =
              [ { Tree.at = 1; work = [ Tree.Write ("b", 9) ]; children = [] } ];
          }
        in
        match Cluster.run_tree_update db ~plan with
        | Tree.Root_down { root } -> check_int "rejecting root" 0 root
        | Tree.Committed _ | Tree.Aborted _ ->
            Alcotest.fail "expected Root_down");
  in
  check_int "one rejection" 1 (Sim.Metrics.total_root_down (Cluster.metrics db));
  check_bool "child untouched" true
    (Node_state.active_update_transactions (Cluster.node db 1) = 0)

(* {1 Crash-path counter release in scans} *)

(* A scan whose remote leg dies must still release every query counter it
   registered (root last), or the pinned version could never be garbage
   collected and Phase 2 of advancement would block forever. *)
let test_scan_crash_releases_counters () =
  let db =
    with_cluster (fun db ->
        Cluster.load db ~node:0 [ ("a1", 1) ];
        Cluster.load db ~node:1 [ ("b1", 2) ];
        Cluster.crash db ~node:1;
        let root = Cluster.node db 0 in
        let pinned = Node_state.q root in
        (match
           Cluster.run_scan db ~root:0
             ~ranges:[ (0, "a", "az"); (1, "b", "bz") ]
         with
        | _ -> Alcotest.fail "expected the scan to fail"
        | exception Net.Network.Node_down n -> check_int "node 1 died" 1 n);
        check_int "root counter released on the crash path" 0
          (Node_state.query_count root ~version:pinned);
        (* Advancement is not blocked by the dead scan's snapshot. *)
        Cluster.recover db ~node:1;
        ignore (Cluster.run_update db ~root:0
                  ~ops:[ Update.Write { node = 0; key = "a1"; value = 5 } ]);
        match Cluster.advance_and_wait db ~coordinator:0 with
        | `Completed _ -> ()
        | `Busy -> Alcotest.fail "advancement busy")
  in
  check_int "no queries recorded for the failed scan" 0
    (Sim.Metrics.total_queries (Cluster.metrics db))

(* {1 Orphaned dispatch in the tree executor} *)

(* The root's RPC to a slow child times out, aborting the transaction
   while the dispatch is still in flight.  When it finally lands, the
   registry's state check must roll the subtransaction back on the spot —
   otherwise its update counter leaks and every future advancement's
   Phase 1 blocks on it. *)
let test_tree_orphaned_dispatch_rolled_back () =
  let config = { Ava3.Config.default with rpc_timeout = 6.0 } in
  let db =
    with_cluster ~config (fun db ->
        Cluster.load db ~node:0 [ ("a", 0) ];
        Cluster.load db ~node:1 [ ("b", 0) ];
        Cluster.load db ~node:2 [ ("c", 0) ];
        (* The dispatch to node 2 is slower than the RPC timeout. *)
        Net.Network.set_link_extra (Cluster.network db) ~src:0 ~dst:2 10.0;
        let plan =
          {
            Tree.at = 0;
            work = [ Tree.Write ("a", 1) ];
            children =
              [
                { Tree.at = 1; work = [ Tree.Write ("b", 1) ]; children = [] };
                { Tree.at = 2; work = [ Tree.Write ("c", 1) ]; children = [] };
              ];
          }
        in
        (match Cluster.run_tree_update db ~plan with
        | Tree.Aborted { reason = `Rpc_timeout n; _ } ->
            check_int "timed out on the slow child" 2 n
        | Tree.Aborted _ -> Alcotest.fail "expected an rpc-timeout abort"
        | Tree.Committed _ | Tree.Root_down _ ->
            Alcotest.fail "expected an abort");
        (* Let the orphaned dispatch land at node 2 and clean up. *)
        Sim.Engine.sleep 20.0;
        for n = 0 to 2 do
          check_int
            (Printf.sprintf "node %d update counter drained" n)
            0
            (Node_state.active_update_transactions (Cluster.node db n))
        done;
        (* Phase 1 of advancement waits on update counters: it must not
           block on the orphan's leaked registration. *)
        ignore (Cluster.run_update db ~root:0
                  ~ops:[ Update.Write { node = 0; key = "a"; value = 2 } ]);
        match Cluster.advance_and_wait db ~coordinator:1 with
        | `Completed _ -> ()
        | `Busy -> Alcotest.fail "advancement busy")
  in
  let m = Cluster.metrics db in
  check_int "exactly one abort" 1 (Sim.Metrics.total_aborts m);
  check_int "one rpc timeout recorded" 1 (Sim.Metrics.total_rpc_timeouts m);
  check_bool "nothing committed in version 1 at node 2" true
    (Vstore.Store.read_le (Node_state.store (Cluster.node db 2)) "c" 1 <> Some 1)

let () =
  Alcotest.run "txn_core"
    [
      ( "root-down sentinel",
        [
          Alcotest.test_case "flat executor" `Quick test_root_down_flat;
          Alcotest.test_case "tree executor" `Quick test_root_down_tree;
        ] );
      ( "crash paths",
        [
          Alcotest.test_case "scan releases counters" `Quick
            test_scan_crash_releases_counters;
          Alcotest.test_case "tree orphaned dispatch rolled back" `Quick
            test_tree_orphaned_dispatch_rolled_back;
        ] );
    ]
