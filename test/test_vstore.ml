(* Tests for the versioned storage engine, including the Phase-3 GC rules. *)

module Store = Vstore.Store

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let vopt = Alcotest.(option int)

let test_write_read () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  check_bool "exists in 0" true (Store.exists_in s "x" 0);
  check_bool "not in 1" false (Store.exists_in s "x" 1);
  Alcotest.check vopt "read_le 0" (Some 10) (Store.read_le s "x" 0);
  Alcotest.check vopt "read_le 5 sees v0" (Some 10) (Store.read_le s "x" 5);
  Alcotest.check vopt "unknown item" None (Store.read_le s "y" 5)

let test_version_visibility () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.write s "x" 1 11;
  Store.write s "x" 2 12;
  Alcotest.check vopt "v0" (Some 10) (Store.read_le s "x" 0);
  Alcotest.check vopt "v1" (Some 11) (Store.read_le s "x" 1);
  Alcotest.check vopt "v2" (Some 12) (Store.read_le s "x" 2);
  Alcotest.check vopt "v9" (Some 12) (Store.read_le s "x" 9);
  check_int "maxV" 2 (Option.get (Store.max_version s "x"));
  Alcotest.(check (list int)) "versions" [ 0; 1; 2 ] (Store.versions_of s "x")

let test_bound_enforced () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 0;
  Store.write s "x" 1 1;
  Store.write s "x" 2 2;
  check_int "high water" 3 (Store.high_water_versions s);
  Alcotest.check_raises "fourth version rejected"
    (Store.Version_bound_exceeded { key = "x"; versions = [ 0; 1; 2; 3 ] })
    (fun () -> Store.write s "x" 3 3)

let test_unbounded () =
  let s : int Store.t = Store.create () in
  for v = 0 to 99 do
    Store.write s "x" v v
  done;
  check_int "100 versions" 100 (Store.live_versions s "x");
  check_int "high water" 100 (Store.high_water_versions s)

let test_overwrite_same_version () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 1 10;
  Store.write s "x" 1 20;
  check_int "still one version" 1 (Store.live_versions s "x");
  Alcotest.check vopt "latest value" (Some 20) (Store.read_le s "x" 1)

let test_tombstone_visibility () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.delete s "x" 1;
  Alcotest.check vopt "old version still readable" (Some 10)
    (Store.read_le s "x" 0);
  Alcotest.check vopt "deleted as of v1" None (Store.read_le s "x" 1);
  check_bool "tombstone exists_in" true (Store.exists_in s "x" 1)

let test_lone_tombstone_kept_until_gc () =
  (* Tombstones persist at delete time (uncommitted transactions may still
     reference them); garbage collection removes fully-deleted items. *)
  let s : int Store.t = Store.create ~bound:3 () in
  Store.delete s "x" 1;
  check_int "tombstone retained" 1 (Store.live_versions s "x");
  Alcotest.check vopt "reads as absent" None (Store.read_le s "x" 5);
  Store.write s "y" 1 5;
  Store.delete s "y" 1;
  check_int "tombstone overwrites value" 1 (Store.live_versions s "y");
  Store.gc s ~collect:1 ~query:2;
  check_int "gc removes deleted items" 0 (Store.item_count s)

let test_copy_forward () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.copy_forward s "x" ~src:0 ~dst:2;
  Alcotest.check vopt "copied value" (Some 10) (Store.read_exact s "x" 2);
  Alcotest.check_raises "copy of missing source" Not_found (fun () ->
      Store.copy_forward s "z" ~src:0 ~dst:1)

let test_remove_version () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.write s "x" 1 11;
  Store.remove_version s "x" 1;
  check_int "one left" 1 (Store.live_versions s "x");
  Alcotest.check vopt "v1 read falls back" (Some 10) (Store.read_le s "x" 1);
  Store.remove_version s "x" 7 (* absent version: no-op *);
  check_int "still one" 1 (Store.live_versions s "x")

(* Phase-3 GC: item exists in the query version -> the collected version is
   dropped. *)
let test_gc_drops_collected () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.write s "x" 1 11;
  Store.gc s ~collect:0 ~query:1;
  Alcotest.(check (list int)) "only v1 remains" [ 1 ] (Store.versions_of s "x");
  Alcotest.check vopt "v1 value intact" (Some 11) (Store.read_le s "x" 1)

(* Phase-3 GC: item absent from the query version -> its old entry is
   renumbered to the query version. *)
let test_gc_renumbers () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.gc s ~collect:0 ~query:1;
  Alcotest.(check (list int)) "renumbered to 1" [ 1 ] (Store.versions_of s "x");
  Alcotest.check vopt "value preserved" (Some 10) (Store.read_le s "x" 1);
  Alcotest.check vopt "old version gone" None (Store.read_le s "x" 0)

let test_gc_removes_deleted_items () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.delete s "x" 1;
  Store.gc s ~collect:0 ~query:1;
  check_int "deleted item fully removed" 0 (Store.item_count s)

let test_gc_preserves_newer () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.write s "x" 2 12;
  (* x does not exist in version 1 (the query version): renumber v0 -> v1,
     keep v2 untouched. *)
  Store.gc s ~collect:0 ~query:1;
  Alcotest.(check (list int)) "v1 and v2" [ 1; 2 ] (Store.versions_of s "x");
  Alcotest.check vopt "renumbered" (Some 10) (Store.read_le s "x" 1);
  Alcotest.check vopt "newest" (Some 12) (Store.read_le s "x" 2)

(* Regression (found by test_recovery_fuzz): the gc drop-path guard must
   treat any entry strictly between [collect] and [query] as the query
   reader's target — not only an entry at exactly [query].  Renumbering
   the stale v0 entry up to the query version would shadow the newer
   v2. *)
let test_gc_skipped_query_keeps_newest () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 10;
  Store.write s "x" 2 12;
  Store.gc s ~collect:1 ~query:3;
  Alcotest.(check (list int)) "stale entry dropped" [ 2 ]
    (Store.versions_of s "x");
  Alcotest.check vopt "query reader sees the newer value" (Some 12)
    (Store.read_le s "x" 3)

(* The item representation keeps three versions in inline slots and spills
   older entries to a list; a bound above the slot capacity exercises the
   spill path before the bound trips. *)
let test_slot_overflow_bound () =
  let s : int Store.t = Store.create ~bound:5 () in
  for v = 0 to 4 do
    Store.write s "x" v v
  done;
  check_int "five live versions (slots + spill)" 5 (Store.live_versions s "x");
  Alcotest.(check (list int))
    "all versions ascending" [ 0; 1; 2; 3; 4 ] (Store.versions_of s "x");
  Alcotest.check vopt "oldest (spilled) readable" (Some 0)
    (Store.read_exact s "x" 0);
  Alcotest.check_raises "sixth version rejected"
    (Store.Version_bound_exceeded { key = "x"; versions = [ 0; 1; 2; 3; 4; 5 ] })
    (fun () -> Store.write s "x" 5 5)

let test_range_lo_eq_hi () =
  let s : int Store.t = Store.create ~bound:3 () in
  List.iter (fun (k, v) -> Store.write s k 0 v) [ ("a", 1); ("b", 2); ("c", 3) ];
  Alcotest.(check (list (pair string int)))
    "lo = hi hits exactly that key" [ ("b", 2) ]
    (Store.range s ~lo:"b" ~hi:"b" 0);
  Alcotest.(check (list (pair string int)))
    "lo = hi on absent key" []
    (Store.range s ~lo:"bb" ~hi:"bb" 0)

let test_range_across_tombstones () =
  let s : int Store.t = Store.create ~bound:3 () in
  List.iter (fun (k, v) -> Store.write s k 0 v)
    [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ];
  Store.delete s "b" 1;
  Store.delete s "c" 1;
  Alcotest.(check (list (pair string int)))
    "tombstoned keys skipped, neighbours kept" [ ("a", 1); ("d", 4) ]
    (Store.range s ~lo:"a" ~hi:"d" 1);
  Alcotest.(check (list (pair string int)))
    "v0 still sees the full row" [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ]
    (Store.range s ~lo:"a" ~hi:"d" 0);
  Alcotest.(check (list (pair string int)))
    "range of only tombstones is empty" []
    (Store.range s ~lo:"b" ~hi:"c" 1)

(* The histogram must not depend on whether entries live in the inline
   slots (bounded store) or partly in the spill list (unbounded store). *)
let test_histogram_slot_vs_list () =
  let fill (s : int Store.t) =
    Store.write s "a" 0 1;
    Store.write s "b" 0 1;
    Store.write s "b" 1 2;
    Store.write s "c" 0 1;
    Store.write s "c" 1 2;
    Store.write s "c" 2 3
  in
  let bounded : int Store.t = Store.create ~bound:3 () in
  let unbounded : int Store.t = Store.create () in
  fill bounded;
  fill unbounded;
  Alcotest.(check (list (pair int int)))
    "same histogram for both representations"
    (Store.version_histogram bounded)
    (Store.version_histogram unbounded);
  (* Deep chains count spilled entries too. *)
  for v = 3 to 9 do
    Store.write unbounded "c" v (v + 1)
  done;
  Alcotest.(check (list (pair int int)))
    "spilled entries counted" [ (1, 1); (2, 1); (10, 1) ]
    (Store.version_histogram unbounded)

let test_histogram () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "a" 0 1;
  Store.write s "b" 0 1;
  Store.write s "b" 1 2;
  Alcotest.(check (list (pair int int)))
    "histogram" [ (1, 1); (2, 1) ] (Store.version_histogram s)


let test_range_basic () =
  let s : int Store.t = Store.create ~bound:3 () in
  List.iter (fun (k, v) -> Store.write s k 0 v)
    [ ("b", 2); ("a", 1); ("d", 4); ("c", 3); ("f", 6) ];
  Alcotest.(check (list (pair string int)))
    "ordered inclusive range"
    [ ("b", 2); ("c", 3); ("d", 4) ]
    (Store.range s ~lo:"b" ~hi:"d" 0);
  Alcotest.(check (list (pair string int)))
    "open-ended bounds match nothing extra"
    [ ("a", 1) ]
    (Store.range s ~lo:"" ~hi:"a" 0);
  Alcotest.(check (list (pair string int))) "empty range" []
    (Store.range s ~lo:"x" ~hi:"z" 0);
  Alcotest.(check (list (pair string int))) "inverted range" []
    (Store.range s ~lo:"d" ~hi:"b" 0)

let test_range_versions () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "a" 0 1;
  Store.write s "b" 0 2;
  Store.write s "b" 1 20;
  Store.delete s "a" 1;
  (* At version 0: both original; at version 1: a deleted, b updated. *)
  Alcotest.(check (list (pair string int)))
    "v0 snapshot" [ ("a", 1); ("b", 2) ]
    (Store.range s ~lo:"a" ~hi:"z" 0);
  Alcotest.(check (list (pair string int)))
    "v1 snapshot" [ ("b", 20) ]
    (Store.range s ~lo:"a" ~hi:"z" 1)

let test_range_after_gc () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "a" 0 1;
  Store.write s "b" 1 2;
  Store.gc s ~collect:0 ~query:1;
  Alcotest.(check (list (pair string int)))
    "renumbered entries still scannable" [ ("a", 1); ("b", 2) ]
    (Store.range s ~lo:"a" ~hi:"z" 1)

(* A range read at the query version straddling a GC round is unchanged by
   the round, whichever rule ran: the paper's renumbering rule moves
   untouched items' entries up to [query], the in-place rule leaves them
   where readers resolve to them anyway.  Both rules must agree with the
   pre-GC snapshot and with each other — the read-equivalence the index's
   visibility contract leans on. *)
let test_range_gc_straddle_both_rules () =
  let build gc_renumber =
    let s : int Store.t = Store.create ~bound:3 ~gc_renumber () in
    Store.write s "hot" 0 10;
    Store.write s "hot" 2 12;
    (* updated above [collect] *)
    Store.write s "old" 0 20;
    (* untouched since v0 — the rules diverge mechanically here *)
    Store.write s "dead" 0 30;
    Store.delete s "dead" 2;
    (* deleted above [collect] *)
    s
  in
  let expected = [ ("hot", 12); ("old", 20) ] in
  List.iter
    (fun gc_renumber ->
      let name fmt =
        Printf.sprintf "%s (gc_renumber %b)" fmt gc_renumber
      in
      let s = build gc_renumber in
      let before = Store.range s ~lo:"" ~hi:"~" 2 in
      Store.gc s ~collect:1 ~query:2;
      Alcotest.(check (list (pair string int)))
        (name "range at query version") expected
        (Store.range s ~lo:"" ~hi:"~" 2);
      Alcotest.(check (list (pair string int)))
        (name "GC is read-invisible at the query version")
        before
        (Store.range s ~lo:"" ~hi:"~" 2);
      Alcotest.(check (list (pair string int)))
        (name "equal bounds on a straddling key")
        [ ("old", 20) ]
        (Store.range s ~lo:"old" ~hi:"old" 2);
      Alcotest.(check (list (pair string int)))
        (name "equal bounds on the deleted key") []
        (Store.range s ~lo:"dead" ~hi:"dead" 2);
      Alcotest.(check (list (pair string int)))
        (name "empty range untouched by GC") []
        (Store.range s ~lo:"x" ~hi:"q" 2);
      (* The mechanical difference between the rules, for the record:
         renumbering moves the untouched item's entry to [query], in-place
         leaves it at its original version. *)
      Alcotest.(check (list int))
        (name "surviving versions of the untouched item")
        (if gc_renumber then [ 2 ] else [ 0 ])
        (Store.versions_of s "old"))
    [ true; false ]

(* Properties *)

let key_gen = QCheck.Gen.(map (Printf.sprintf "k%d") (int_bound 20))

let ops_gen =
  QCheck.Gen.(
    list_size (int_bound 200)
      (oneof
         [
           map2 (fun k v -> `Write (k, v)) key_gen (int_bound 1000);
           map (fun k -> `Delete k) key_gen;
         ]))

let arbitrary_ops = QCheck.make ops_gen

(* After any sequence of single-version writes followed by repeated rounds
   of (write at v+1; gc v), the number of live versions never exceeds 2. *)
let prop_gc_keeps_two_versions =
  QCheck.Test.make ~name:"gc keeps at most two live versions" ~count:100
    arbitrary_ops (fun ops ->
      let s : int Store.t = Store.create ~bound:3 () in
      let apply v = function
        | `Write (k, value) -> Store.write s k v value
        | `Delete k -> Store.delete s k v
      in
      List.iter (apply 0) ops;
      let ok = ref true in
      for round = 1 to 4 do
        List.iter (apply round) ops;
        Store.gc s ~collect:(round - 1) ~query:round;
        if Store.max_live_versions_now s > 2 then ok := false
      done;
      !ok)

(* read_le after gc returns the same values as read_le before gc at the
   query version: garbage collection is invisible to readers of the
   surviving snapshot. *)
let prop_gc_preserves_query_snapshot =
  QCheck.Test.make ~name:"gc preserves the query-version snapshot" ~count:100
    arbitrary_ops (fun ops ->
      let s : int Store.t = Store.create () in
      let keys = List.map (function `Write (k, _) | `Delete k -> k) ops in
      List.iter
        (fun op ->
          match op with
          | `Write (k, v) -> Store.write s k 0 v
          | `Delete k -> Store.delete s k 0)
        ops;
      (* A few version-1 writes on alternating keys. *)
      List.iteri (fun i k -> if i mod 3 = 0 then Store.write s k 1 (i * 7)) keys;
      let before = List.map (fun k -> (k, Store.read_le s k 1)) keys in
      Store.gc s ~collect:0 ~query:1;
      let after = List.map (fun k -> (k, Store.read_le s k 1)) keys in
      before = after)

(* The version index stays consistent with the items under arbitrary
   write/delete/gc interleavings: items_in_version v counts exactly the
   items with an entry at v. *)
let prop_version_index_consistent =
  let op_gen =
    QCheck.Gen.(
      list_size (int_bound 150)
        (pair key_gen (oneof [ return `W; return `D; return `R ])))
  in
  QCheck.Test.make ~name:"version index matches item entries" ~count:100
    (QCheck.make op_gen) (fun ops ->
      let s : int Store.t = Store.create () in
      let version = ref 0 in
      List.iteri
        (fun i (k, op) ->
          (match op with
          | `W -> Store.write s k !version i
          | `D -> Store.delete s k !version
          | `R -> Store.remove_version s k !version);
          if i mod 17 = 16 then begin
            Store.gc s ~collect:!version ~query:(!version + 1);
            incr version
          end)
        ops;
      (* Recount from the ground truth. *)
      let ok = ref true in
      for v = 0 to !version + 1 do
        let actual = ref 0 in
        Store.iter
          (fun _ entries ->
            if List.exists (fun (ev, _) -> ev = v) entries then incr actual)
          s;
        if Store.items_in_version s v <> !actual then ok := false
      done;
      !ok)

(* The in-place GC rule is read-equivalent to the paper's renumbering rule:
   after any protocol-shaped history (writes at the current update version,
   one GC per round), read_le agrees at every version >= the query
   version. *)
let prop_gc_rules_read_equivalent =
  let op_gen =
    QCheck.Gen.(
      list_size (int_bound 120)
        (pair key_gen (oneof [ return `W; return `D ])))
  in
  QCheck.Test.make ~name:"renumber and in-place gc are read-equivalent"
    ~count:100 (QCheck.make op_gen) (fun ops ->
      let run renumber =
        let s : int Store.t = Store.create ~gc_renumber:renumber () in
        let u = ref 1 in
        List.iteri
          (fun i (k, op) ->
            (match op with
            | `W -> Store.write s k !u i
            | `D -> Store.delete s k !u);
            if i mod 13 = 12 then begin
              (* One advancement round: updates move to !u + 1, version
                 !u - 1 is collected with query version !u. *)
              Store.gc s ~collect:(!u - 1) ~query:!u;
              incr u
            end)
          ops;
        let keys = List.sort_uniq compare (List.map fst ops) in
        List.map (fun k -> (k, Store.read_le s k !u, Store.read_le s k max_int)) keys
      in
      run true = run false)

(* Under a protocol-shaped history — writes at the current update version,
   advancement rounds that may skip versions, collection trailing behind —
   the store's read_le at or above the query version always agrees with a
   naive model that never garbage-collects anything. *)
let prop_store_matches_reference =
  let op_gen =
    QCheck.Gen.(
      list_size (int_bound 200)
        (triple key_gen (int_bound 2)
           (frequency [ (5, return `W); (2, return `D); (2, return `G) ])))
  in
  QCheck.Test.make ~name:"store agrees with a gc-free reference model"
    ~count:100 (QCheck.make op_gen) (fun ops ->
      let s : int Store.t = Store.create () in
      let model : (string, (int * int option) list) Hashtbl.t =
        Hashtbl.create 16
      in
      let record k v value =
        Hashtbl.replace model k
          ((v, value) :: Option.value (Hashtbl.find_opt model k) ~default:[])
      in
      let model_read_le k v =
        (* Newest write at the highest version <= v; the entry list is in
           reverse write order, so on a version tie the first hit wins. *)
        List.fold_left
          (fun acc (ev, value) ->
            if ev > v then acc
            else
              match acc with
              | Some (bv, _) when bv >= ev -> acc
              | _ -> Some (ev, value))
          None
          (Option.value (Hashtbl.find_opt model k) ~default:[])
        |> Option.map snd |> Option.join
      in
      let u = ref 1 and q = ref 0 and g = ref (-1) in
      let next = ref 0 in
      let ok = ref true in
      let agree k v = Store.read_le s k v = model_read_le k v in
      List.iter
        (fun (k, skip, op) ->
          (match op with
          | `W ->
              incr next;
              Store.write s k !u !next;
              record k !u (Some !next)
          | `D ->
              Store.delete s k !u;
              record k !u None
          | `G ->
              (* One advancement round; [skip] > 0 makes the query version
                 jump past unwritten versions — the shape that once tricked
                 the renumbering rule into shadowing a newer entry. *)
              u := !u + 1 + skip;
              q := !u - 1;
              if !q - 1 > !g then begin
                incr g;
                Store.gc s ~collect:!g ~query:!q
              end);
          if not (agree k !q && agree k !u && agree k max_int) then ok := false)
        ops;
      !ok)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "vstore"
    [
      ( "basics",
        [
          Alcotest.test_case "write and read" `Quick test_write_read;
          Alcotest.test_case "version visibility" `Quick test_version_visibility;
          Alcotest.test_case "bound enforced" `Quick test_bound_enforced;
          Alcotest.test_case "unbounded mode" `Quick test_unbounded;
          Alcotest.test_case "overwrite same version" `Quick
            test_overwrite_same_version;
        ] );
      ( "deletion",
        [
          Alcotest.test_case "tombstone visibility" `Quick
            test_tombstone_visibility;
          Alcotest.test_case "lone tombstone kept until gc" `Quick
            test_lone_tombstone_kept_until_gc;
        ] );
      ( "versions",
        [
          Alcotest.test_case "copy forward" `Quick test_copy_forward;
          Alcotest.test_case "remove version" `Quick test_remove_version;
          Alcotest.test_case "slot overflow bound" `Quick
            test_slot_overflow_bound;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram slot vs list" `Quick
            test_histogram_slot_vs_list;
          Alcotest.test_case "range basic" `Quick test_range_basic;
          Alcotest.test_case "range lo = hi" `Quick test_range_lo_eq_hi;
          Alcotest.test_case "range across tombstones" `Quick
            test_range_across_tombstones;
          Alcotest.test_case "range versions" `Quick test_range_versions;
          Alcotest.test_case "range after gc" `Quick test_range_after_gc;
          Alcotest.test_case "range straddling gc, both rules" `Quick
            test_range_gc_straddle_both_rules;
        ] );
      ( "gc",
        [
          Alcotest.test_case "drops collected" `Quick test_gc_drops_collected;
          Alcotest.test_case "renumbers survivors" `Quick test_gc_renumbers;
          Alcotest.test_case "removes deleted items" `Quick
            test_gc_removes_deleted_items;
          Alcotest.test_case "preserves newer versions" `Quick
            test_gc_preserves_newer;
          Alcotest.test_case "skipped query keeps newest" `Quick
            test_gc_skipped_query_keeps_newest;
        ] );
      ( "properties",
        qc
          [
            prop_gc_keeps_two_versions;
            prop_gc_preserves_query_snapshot;
            prop_version_index_consistent;
            prop_gc_rules_read_equivalent;
            prop_store_matches_reference;
          ] );
    ]

