(* Tests for the WAL, the two recovery schemes, their moveToFuture
   implementations, and crash replay. *)

module Store = Vstore.Store
module Log = Wal.Log
module Scheme = Wal.Scheme
module Recovery = Wal.Recovery

let vopt = Alcotest.(option int)
let check_int = Alcotest.(check int)

let make kind =
  let store : int Store.t = Store.create ~bound:3 () in
  let log = Log.create () in
  (Scheme.create kind ~store ~log, store, log)

let both_kinds f () =
  f Scheme.No_undo;
  f Scheme.Undo_redo

(* Under No_undo, writes stay out of the store until commit; under
   Undo_redo they are applied in place. *)
let test_write_visibility () =
  let t, store, _ = make Scheme.No_undo in
  let s = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s "x" (Some 10);
  Alcotest.check vopt "no-undo: store untouched" None (Store.read_le store "x" 9);
  Alcotest.check
    Alcotest.(option (option int))
    "own write visible" (Some (Some 10)) (Scheme.read_own t s "x");
  let t2, store2, _ = make Scheme.Undo_redo in
  let s2 = Scheme.begin_session t2 ~txn:1 ~version:1 in
  Scheme.write t2 s2 "x" (Some 10);
  Alcotest.check vopt "undo-redo: store updated" (Some 10)
    (Store.read_le store2 "x" 9);
  Alcotest.check
    Alcotest.(option (option int))
    "read_own defers to store" None (Scheme.read_own t2 s2 "x")

let test_commit_applies kind =
  let t, store, _ = make kind in
  let s = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s "x" (Some 10);
  Scheme.write t s "y" None;
  Scheme.commit t s ~final_version:1;
  Alcotest.check vopt "x committed" (Some 10) (Store.read_le store "x" 1);
  Alcotest.check vopt "y deleted" None (Store.read_le store "y" 1)

let test_abort_erases kind =
  let t, store, _ = make kind in
  Store.write store "x" 0 1;
  let s = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s "x" (Some 99);
  Scheme.write t s "z" (Some 5);
  Scheme.abort t s;
  Alcotest.check vopt "x back to original" (Some 1) (Store.read_le store "x" 9);
  Alcotest.check vopt "z never existed" None (Store.read_le store "z" 9);
  check_int "no version-1 leftovers" 1 (Store.live_versions store "x")

let test_abort_restores_overwrite () =
  (* Undo-redo specific: overwriting an existing version-1 entry and
     aborting must restore the old version-1 value, not delete it. *)
  let t, store, _ = make Scheme.Undo_redo in
  Store.write store "x" 1 50;
  let s = Scheme.begin_session t ~txn:2 ~version:1 in
  Scheme.write t s "x" (Some 99);
  Scheme.write t s "x" (Some 100);
  Scheme.abort t s;
  Alcotest.check vopt "restored first image" (Some 50) (Store.read_le store "x" 1)

let test_mtf_no_undo_trivial () =
  let t, store, _ = make Scheme.No_undo in
  let s = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s "x" (Some 10);
  Scheme.move_to_future t s ~new_version:2;
  check_int "session moved" 2 (Scheme.version s);
  check_int "trivial path" 1 (Scheme.mtf_trivial t);
  check_int "nothing copied" 0 (Scheme.mtf_items_copied t);
  Scheme.commit t s ~final_version:2;
  Alcotest.check vopt "committed at final version" (Some 10)
    (Store.read_exact store "x" 2)

let test_mtf_undo_redo_moves_updates () =
  let t, store, _ = make Scheme.Undo_redo in
  Store.write store "x" 0 1;
  Store.write store "y" 0 2;
  let s = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s "x" (Some 11);
  Scheme.write t s "y" (Some 12);
  (* Version 1 currently holds the transaction's updates. *)
  Alcotest.check vopt "pre-mtf v1" (Some 11) (Store.read_exact store "x" 1);
  Scheme.move_to_future t s ~new_version:2;
  (* Updates moved to version 2; version 1 scrubbed. *)
  Alcotest.check vopt "x moved" (Some 11) (Store.read_exact store "x" 2);
  Alcotest.check vopt "y moved" (Some 12) (Store.read_exact store "y" 2);
  Alcotest.(check bool) "v1 of x gone" false (Store.exists_in store "x" 1);
  Alcotest.(check bool) "v1 of y gone" false (Store.exists_in store "y" 1);
  check_int "two items copied" 2 (Scheme.mtf_items_copied t);
  Scheme.commit t s ~final_version:2

let test_mtf_undo_redo_restores_overwritten () =
  (* The transaction overwrote an existing version-1 entry (written by an
     earlier committed version-1 transaction): moveToFuture must restore
     that entry, not delete it. *)
  let t, store, _ = make Scheme.Undo_redo in
  Store.write store "x" 1 50;
  let s = Scheme.begin_session t ~txn:2 ~version:1 in
  Scheme.write t s "x" (Some 99);
  Scheme.move_to_future t s ~new_version:2;
  Alcotest.check vopt "v1 restored" (Some 50) (Store.read_exact store "x" 1);
  Alcotest.check vopt "v2 has update" (Some 99) (Store.read_exact store "x" 2);
  Scheme.commit t s ~final_version:2

let test_mtf_then_abort () =
  (* Abort after moveToFuture must clean the new version. *)
  let t, store, _ = make Scheme.Undo_redo in
  Store.write store "x" 0 1;
  let s = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s "x" (Some 11);
  Scheme.move_to_future t s ~new_version:2;
  Scheme.abort t s;
  Alcotest.(check bool) "v2 erased" false (Store.exists_in store "x" 2);
  Alcotest.(check bool) "v1 erased" false (Store.exists_in store "x" 1);
  Alcotest.check vopt "v0 intact" (Some 1) (Store.read_exact store "x" 0)

let test_mtf_noop_when_not_ahead kind =
  let t, _, _ = make kind in
  let s = Scheme.begin_session t ~txn:1 ~version:3 in
  Scheme.move_to_future t s ~new_version:3;
  Scheme.move_to_future t s ~new_version:2;
  check_int "version unchanged" 3 (Scheme.version s);
  check_int "no invocations counted" 0 (Scheme.mtf_invocations t)

let test_recovery_replays_committed kind =
  let t, _, log = make kind in
  let s1 = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s1 "x" (Some 10);
  Scheme.commit t s1 ~final_version:1;
  let s2 = Scheme.begin_session t ~txn:2 ~version:1 in
  Scheme.write t s2 "y" (Some 20);
  Scheme.abort t s2;
  let s3 = Scheme.begin_session t ~txn:3 ~version:1 in
  Scheme.write t s3 "z" (Some 30);
  (* Crash: txn 3 is in flight and must not survive. *)
  let recovered, versions = Recovery.replay log ~bound:3 () in
  Alcotest.check vopt "committed x" (Some 10) (Store.read_le recovered "x" 9);
  Alcotest.check vopt "aborted y gone" None (Store.read_le recovered "y" 9);
  Alcotest.check vopt "in-flight z gone" None (Store.read_le recovered "z" 9);
  check_int "u recovered" 1 versions.Recovery.update_version;
  check_int "q recovered" 0 versions.Recovery.query_version;
  Alcotest.(check (list int)) "committed list" [ 1 ] (Recovery.committed_transactions log);
  Alcotest.(check (list int)) "in-flight list" [ 3 ] (Recovery.in_flight_transactions log)

let test_recovery_applies_final_version kind =
  (* Updates logged at version 1 but committed at version 2 (the
     transaction moved to the future at commit time): recovery must apply
     them at 2. *)
  let t, _, log = make kind in
  let s = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s "x" (Some 10);
  Scheme.move_to_future t s ~new_version:2;
  Scheme.commit t s ~final_version:2;
  let recovered, _ = Recovery.replay log ~bound:3 () in
  Alcotest.(check bool) "nothing at v1" false (Store.exists_in recovered "x" 1);
  Alcotest.check vopt "applied at v2" (Some 10) (Store.read_exact recovered "x" 2)

let test_recovery_replays_advancement () =
  let log : int Log.t = Log.create () in
  Log.append log (Wal.Record.Advance_update 2);
  Log.append log (Wal.Record.Advance_query 1);
  Log.append log (Wal.Record.Collect { collect = 0; query = 1 });
  let _, versions = Recovery.replay log () in
  check_int "u" 2 versions.Recovery.update_version;
  check_int "q" 1 versions.Recovery.query_version;
  check_int "g" 0 versions.Recovery.collected_version

let test_recovery_gc_renumbering () =
  (* The Collect record must replay the renumbering rule so the recovered
     store matches the live one. *)
  let t, live, log = make Scheme.No_undo in
  let s = Scheme.begin_session t ~txn:1 ~version:0 in
  Scheme.write t s "x" (Some 10);
  Scheme.commit t s ~final_version:0;
  Log.append log (Wal.Record.Collect { collect = 0; query = 1 });
  Store.gc live ~collect:0 ~query:1;
  let recovered, _ = Recovery.replay log ~bound:3 () in
  Alcotest.(check (list int))
    "renumbered identically"
    (Store.versions_of live "x")
    (Store.versions_of recovered "x")

(* Property: for random op sequences, a commit under No_undo and Undo_redo
   leaves identical visible states. *)
let prop_schemes_agree =
  let op_gen =
    QCheck.Gen.(
      list_size (int_bound 30)
        (pair (map (Printf.sprintf "k%d") (int_bound 8))
           (oneof [ map (fun v -> Some v) (int_bound 100); return None ])))
  in
  QCheck.Test.make ~name:"no-undo and undo-redo commit identical states"
    ~count:100 (QCheck.make op_gen) (fun ops ->
      let run kind =
        let t, store, _ = make kind in
        Store.write store "k0" 0 (-1);
        Store.write store "k1" 0 (-2);
        let s = Scheme.begin_session t ~txn:1 ~version:1 in
        List.iter (fun (k, v) -> Scheme.write t s k v) ops;
        Scheme.move_to_future t s ~new_version:2;
        Scheme.commit t s ~final_version:2;
        List.map
          (fun i ->
            let k = Printf.sprintf "k%d" i in
            (Store.read_le store k 9, Store.versions_of store k))
          [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      run Scheme.No_undo = run Scheme.Undo_redo)

(* Property: abort is a perfect undo under both schemes. *)
let prop_abort_is_identity =
  let op_gen =
    QCheck.Gen.(
      list_size (int_bound 30)
        (pair (map (Printf.sprintf "k%d") (int_bound 8))
           (oneof [ map (fun v -> Some v) (int_bound 100); return None ])))
  in
  QCheck.Test.make ~name:"abort leaves the store exactly as before"
    ~count:100
    (QCheck.make QCheck.Gen.(pair op_gen bool))
    (fun (ops, use_undo_redo) ->
      let kind = if use_undo_redo then Scheme.Undo_redo else Scheme.No_undo in
      let t, store, _ = make kind in
      Store.write store "k0" 0 7;
      Store.write store "k1" 1 8;
      let snapshot () =
        List.map
          (fun i ->
            let k = Printf.sprintf "k%d" i in
            (Store.versions_of store k, Store.read_le store k 9))
          [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      let before = snapshot () in
      let s = Scheme.begin_session t ~txn:1 ~version:1 in
      List.iter (fun (k, v) -> Scheme.write t s k v) ops;
      Scheme.abort t s;
      before = snapshot ())


let test_checkpoint_replay_equivalence kind =
  (* Recovery from [checkpoint + tail] must equal recovery from the full
     history. *)
  let t, _, log = make kind in
  let s1 = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s1 "x" (Some 10);
  Scheme.write t s1 "y" (Some 20);
  Scheme.commit t s1 ~final_version:1;
  let full_store, full_versions = Recovery.replay log ~bound:3 () in
  (* Checkpoint captures that state; new activity follows. *)
  Recovery.checkpoint log ~store:full_store ~u:2 ~q:1 ~g:0;
  check_int "log reset to one record" 1 (Log.length log);
  let s2 = Scheme.begin_session t ~txn:2 ~version:2 in
  Scheme.write t s2 "z" (Some 30);
  Scheme.commit t s2 ~final_version:2;
  let recovered, versions = Recovery.replay log ~bound:3 () in
  Alcotest.check vopt "pre-checkpoint data" (Some 10)
    (Store.read_le recovered "x" 9);
  Alcotest.check vopt "post-checkpoint data" (Some 30)
    (Store.read_le recovered "z" 9);
  check_int "u from checkpoint" 2 versions.Recovery.update_version;
  check_int "q from checkpoint" 1 versions.Recovery.query_version;
  ignore full_versions

let test_checkpoint_discards_pre_history () =
  (* In-flight records from before a checkpoint are gone — which is exactly
     why checkpoints require quiescence. *)
  let t, _, log = make Scheme.No_undo in
  let s1 = Scheme.begin_session t ~txn:1 ~version:1 in
  Scheme.write t s1 "x" (Some 1);
  Scheme.commit t s1 ~final_version:1;
  let store, _ = Recovery.replay log ~bound:3 () in
  Recovery.checkpoint log ~store ~u:1 ~q:0 ~g:(-1);
  let recovered, _ = Recovery.replay log ~bound:3 () in
  Alcotest.check vopt "state preserved through checkpoint" (Some 1)
    (Store.read_le recovered "x" 9);
  check_int "single checkpoint record" 1 (Log.length log)

(* Property: truncating the log at a checkpoint is invisible to recovery —
   [checkpoint + tail] and the full history replay to the same store and
   version counters, for random committed batches under both schemes. *)
let prop_checkpoint_transparent =
  let batch_gen =
    QCheck.Gen.(
      list_size (int_bound 25)
        (pair (map (Printf.sprintf "k%d") (int_bound 8))
           (oneof [ map (fun v -> Some v) (int_bound 100); return None ])))
  in
  QCheck.Test.make ~name:"truncate-after-checkpoint is invisible to recovery"
    ~count:100
    (QCheck.make QCheck.Gen.(triple batch_gen batch_gen bool))
    (fun (b1, b2, use_undo_redo) ->
      let kind = if use_undo_redo then Scheme.Undo_redo else Scheme.No_undo in
      let run ~checkpoint =
        let t, _, log = make kind in
        let s1 = Scheme.begin_session t ~txn:1 ~version:1 in
        List.iter (fun (k, v) -> Scheme.write t s1 k v) b1;
        Scheme.commit t s1 ~final_version:1;
        Log.append log (Wal.Record.Advance_update 2);
        Log.append log (Wal.Record.Advance_query 1);
        if checkpoint then begin
          let store, _ = Recovery.replay log ~bound:3 () in
          Recovery.checkpoint log ~store ~u:2 ~q:1 ~g:(-1)
        end;
        let s2 = Scheme.begin_session t ~txn:2 ~version:2 in
        List.iter (fun (k, v) -> Scheme.write t s2 k v) b2;
        Scheme.commit t s2 ~final_version:2;
        let recovered, versions = Recovery.replay log ~bound:3 () in
        ( List.map
            (fun i ->
              let k = Printf.sprintf "k%d" i in
              (Store.read_le recovered k 9, Store.versions_of recovered k))
            [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ],
          ( versions.Recovery.update_version,
            versions.Recovery.query_version,
            versions.Recovery.collected_version ) )
      in
      run ~checkpoint:true = run ~checkpoint:false)

(* {1 Group commit} *)

module Disk = Wal.Disk
module Gc = Wal.Group_commit

let test_group_commit_batch_release () =
  (* Four committers arrive inside one window: the first arms the flush
     timer, a single force covers everybody, and all four wake at the same
     instant (window + force latency). *)
  let engine = Sim.Engine.create () in
  let disk = Disk.create ~force_latency:1.0 () in
  let log : int Log.t = Log.create () in
  let gc = Gc.create ~engine ~disk ~log ~window:3.0 () in
  let done_at = Array.make 4 nan in
  for i = 0 to 3 do
    Sim.Engine.schedule engine ~delay:(float_of_int i *. 0.5) (fun () ->
        Log.append log (Wal.Record.Advance_update (i + 2));
        Gc.sync gc;
        done_at.(i) <- Sim.Engine.now engine)
  done;
  Sim.Engine.run engine;
  check_int "one force for the whole batch" 1 (Disk.forces disk);
  check_int "all four records covered" 4 (Disk.records_forced disk);
  Array.iter
    (fun t ->
      Alcotest.(check (float 1e-9)) "released at window + latency" 4.0 t)
    done_at

let test_group_commit_max_batch () =
  (* A full batch flushes early: with max_batch 2 the second arrival
     triggers the force long before the 50-unit window would expire. *)
  let engine = Sim.Engine.create () in
  let disk = Disk.create ~force_latency:1.0 () in
  let log : int Log.t = Log.create () in
  let gc = Gc.create ~engine ~disk ~log ~window:50.0 ~max_batch:2 () in
  let done_at = Array.make 2 nan in
  for i = 0 to 1 do
    Sim.Engine.schedule engine ~delay:(float_of_int i) (fun () ->
        Log.append log (Wal.Record.Advance_update (i + 2));
        Gc.sync gc;
        done_at.(i) <- Sim.Engine.now engine)
  done;
  Sim.Engine.run engine;
  check_int "forced once, before the window expired" 1 (Disk.forces disk);
  Alcotest.(check (float 1e-9))
    "released at the second arrival + latency" 2.0 done_at.(0);
  Alcotest.(check (float 1e-9))
    "both released together" 2.0 done_at.(1)

let test_group_commit_bypass_is_synchronous () =
  (* Zero window and zero latency: sync completes inline, no time passes,
     and the durability model is reported inactive — the configuration the
     rest of the test suite runs under. *)
  let engine = Sim.Engine.create () in
  let disk = Disk.create () in
  let log : int Log.t = Log.create () in
  let gc = Gc.create ~engine ~disk ~log () in
  Alcotest.(check bool) "inactive at defaults" false (Gc.active gc);
  Sim.Engine.schedule engine ~delay:0.0 (fun () ->
      Log.append log (Wal.Record.Advance_update 2);
      Gc.sync gc;
      Alcotest.(check (float 0.0)) "no time passes" 0.0 (Sim.Engine.now engine);
      check_int "record durable immediately" 1 (Log.durable_length log));
  Sim.Engine.run engine;
  check_int "no waiters left" 0 (Gc.pending gc)

let test_group_commit_crash_fails_waiters () =
  (* A crash inside the window: the parked committer gets Crashed instead
     of an acknowledgement, nothing is forced, and the volatile tail is
     droppable. *)
  let engine = Sim.Engine.create () in
  let disk = Disk.create ~force_latency:1.0 () in
  let log : int Log.t = Log.create () in
  let gc = Gc.create ~engine ~disk ~log ~window:5.0 () in
  let outcome = ref `Pending in
  Sim.Engine.schedule engine ~delay:0.0 (fun () ->
      Log.append log (Wal.Record.Advance_update 2);
      match Gc.sync gc with
      | () -> outcome := `Acked
      | exception Gc.Crashed -> outcome := `Crashed);
  Sim.Engine.schedule engine ~delay:2.0 (fun () ->
      Gc.crash gc;
      check_int "volatile tail dropped" 1 (Log.drop_volatile log));
  Sim.Engine.run engine;
  Alcotest.(check bool) "waiter failed with Crashed" true (!outcome = `Crashed);
  check_int "nothing was forced" 0 (Disk.forces disk);
  check_int "log empty after dropping the tail" 0 (Log.length log)

let test_snapshot_roundtrip () =
  let s : int Store.t = Store.create ~bound:3 () in
  Store.write s "x" 0 1;
  Store.write s "x" 1 2;
  Store.delete s "y" 1;
  Store.write s "z" 2 3;
  let restored = Store.restore ~bound:3 (Store.snapshot s) in
  List.iter
    (fun k ->
      Alcotest.(check (list int))
        (k ^ " versions") (Store.versions_of s k) (Store.versions_of restored k);
      Alcotest.check vopt (k ^ " value") (Store.read_le s k 9)
        (Store.read_le restored k 9))
    [ "x"; "y"; "z" ]

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "wal"
    [
      ( "schemes",
        [
          Alcotest.test_case "write visibility" `Quick test_write_visibility;
          Alcotest.test_case "commit applies" `Quick
            (both_kinds test_commit_applies);
          Alcotest.test_case "abort erases" `Quick (both_kinds test_abort_erases);
          Alcotest.test_case "abort restores overwrite" `Quick
            test_abort_restores_overwrite;
        ] );
      ( "move_to_future",
        [
          Alcotest.test_case "no-undo trivial" `Quick test_mtf_no_undo_trivial;
          Alcotest.test_case "undo-redo moves updates" `Quick
            test_mtf_undo_redo_moves_updates;
          Alcotest.test_case "undo-redo restores overwritten" `Quick
            test_mtf_undo_redo_restores_overwritten;
          Alcotest.test_case "mtf then abort" `Quick test_mtf_then_abort;
          Alcotest.test_case "no-op when not ahead" `Quick
            (both_kinds test_mtf_noop_when_not_ahead);
        ] );
      ( "checkpointing",
        [
          Alcotest.test_case "checkpoint replay equivalence" `Quick
            (both_kinds test_checkpoint_replay_equivalence);
          Alcotest.test_case "discards pre-history" `Quick
            test_checkpoint_discards_pre_history;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "replays committed only" `Quick
            (both_kinds test_recovery_replays_committed);
          Alcotest.test_case "applies at final version" `Quick
            (both_kinds test_recovery_applies_final_version);
          Alcotest.test_case "replays advancement records" `Quick
            test_recovery_replays_advancement;
          Alcotest.test_case "replays gc renumbering" `Quick
            test_recovery_gc_renumbering;
        ] );
      ( "group commit",
        [
          Alcotest.test_case "one force releases the batch" `Quick
            test_group_commit_batch_release;
          Alcotest.test_case "full batch flushes early" `Quick
            test_group_commit_max_batch;
          Alcotest.test_case "bypass is synchronous" `Quick
            test_group_commit_bypass_is_synchronous;
          Alcotest.test_case "crash fails parked waiters" `Quick
            test_group_commit_crash_fails_waiters;
        ] );
      ( "properties",
        qc
          [
            prop_schemes_agree;
            prop_abort_is_identity;
            prop_checkpoint_transparent;
          ] );
    ]
