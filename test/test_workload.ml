(* Tests for the workload driver, histograms under edge cases, and the
   report renderer. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {1 Histogram edge cases} *)

let test_histogram_empty () =
  let h = Workload.Histogram.create () in
  check_int "count" 0 (Workload.Histogram.count h);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Workload.Histogram.mean h);
  Alcotest.(check (float 0.0)) "p99" 0.0 (Workload.Histogram.percentile h 0.99);
  Alcotest.(check string) "summary" "n=0" (Workload.Histogram.summary h)

let test_histogram_single () =
  let h = Workload.Histogram.create () in
  Workload.Histogram.add h 7.0;
  Alcotest.(check (float 1e-9)) "p50" 7.0 (Workload.Histogram.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p0 clamps" 7.0 (Workload.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p>1 clamps" 7.0 (Workload.Histogram.percentile h 2.0)

let test_histogram_merge () =
  let a = Workload.Histogram.create () and b = Workload.Histogram.create () in
  List.iter (Workload.Histogram.add a) [ 1.0; 2.0 ];
  List.iter (Workload.Histogram.add b) [ 3.0; 4.0 ];
  let m = Workload.Histogram.merge a b in
  check_int "merged count" 4 (Workload.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.5 (Workload.Histogram.mean m);
  (* Sources unchanged. *)
  check_int "a intact" 2 (Workload.Histogram.count a)

let prop_histogram_percentiles_ordered =
  QCheck.Test.make ~name:"percentiles are monotone" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 1000.0))
    (fun samples ->
      let h = Workload.Histogram.create () in
      List.iter (Workload.Histogram.add h) samples;
      let p q = Workload.Histogram.percentile h q in
      p 0.1 <= p 0.5 && p 0.5 <= p 0.9 && p 0.9 <= p 1.0
      && p 1.0 = Workload.Histogram.max_value h)

(* {1 Driver} *)

let run_once seed =
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let db =
    Baseline.Ava3_db.create ~engine ~advancement_period:60.0
      ~advancement_until:300.0 ~nodes:2 ()
  in
  let ks = Workload.Keyspace.create ~nodes:2 ~keys_per_node:30 ~theta:0.7 in
  for n = 0 to 1 do
    Baseline.Ava3_db.load db ~node:n
      (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let spec =
    {
      Workload.Driver.default_spec with
      duration = 300.0;
      update_rate = 0.3;
      query_rate = 0.2;
      long_query_period = 90.0;
      long_query_reads = 10;
    }
  in
  Workload.Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks ~spec

let test_driver_deterministic () =
  let fingerprint (r : Workload.Driver.report) =
    ( r.Workload.Driver.committed,
      r.Workload.Driver.queries_ok,
      Workload.Histogram.mean r.Workload.Driver.update_latency,
      Workload.Histogram.mean r.Workload.Driver.staleness )
  in
  check_bool "same seed, same report" true
    (fingerprint (run_once 5L) = fingerprint (run_once 5L));
  check_bool "different seed differs" true
    (fingerprint (run_once 5L) <> fingerprint (run_once 6L))

let test_driver_rates_scale () =
  let r = run_once 5L in
  (* Open-loop: arrivals approximate rate x duration. *)
  let expect_updates = 0.3 *. 300.0 in
  let total_updates = float_of_int (r.Workload.Driver.committed + r.Workload.Driver.aborted) in
  check_bool "update arrivals near expectation" true
    (total_updates > 0.6 *. expect_updates && total_updates < 1.5 *. expect_updates);
  check_bool "long queries ran" true
    (Workload.Histogram.count r.Workload.Driver.long_query_latency >= 2)

let run_spec seed mk_spec =
  let engine = Sim.Engine.create ~seed ~trace:false () in
  let db =
    Baseline.Ava3_db.create ~engine ~advancement_period:60.0
      ~advancement_until:300.0 ~nodes:4 ()
  in
  let ks = Workload.Keyspace.create ~nodes:4 ~keys_per_node:30 ~theta:0.7 in
  for n = 0 to 3 do
    Baseline.Ava3_db.load db ~node:n
      (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:n))
  done;
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let spec =
    mk_spec { Workload.Driver.default_spec with duration = 300.0 }
  in
  Workload.Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks ~spec

let test_hot_node_skew () =
  (* A heavily skewed run completes, commits work, and stays deterministic. *)
  let run () =
    run_spec 11L (fun s ->
        { s with Workload.Driver.update_rate = 0.4; node_theta = 0.95 })
  in
  let r = run () and r' = run () in
  check_bool "skewed run commits" true (r.Workload.Driver.committed > 0);
  check_int "deterministic" r.Workload.Driver.committed
    r'.Workload.Driver.committed

let test_arrival_storms () =
  (* storm_factor 5 over the first quarter of each period doubles the mean
     rate: 0.75 + 0.25 * 5 = 2.  Arrival counts are Poisson, so allow slack
     around the 2x expectation. *)
  let arrivals storm =
    let r =
      run_spec 12L (fun s ->
          let s = { s with Workload.Driver.update_rate = 0.3 } in
          if storm then
            { s with Workload.Driver.storm_factor = 5.0; storm_period = 50.0 }
          else s)
    in
    r.Workload.Driver.committed + r.Workload.Driver.aborted
  in
  let flat = arrivals false and stormy = arrivals true in
  check_bool
    (Printf.sprintf "storms raise arrivals (flat %d, stormy %d)" flat stormy)
    true
    (float_of_int stormy > 1.4 *. float_of_int flat)

let test_zero_rate_streams () =
  let engine = Sim.Engine.create ~seed:9L ~trace:false () in
  let db =
    Baseline.Ava3_db.create ~engine ~advancement_period:0.0 ~nodes:1 ()
  in
  let ks = Workload.Keyspace.create ~nodes:1 ~keys_per_node:5 ~theta:0.0 in
  Baseline.Ava3_db.load db ~node:0
    (List.map (fun k -> (k, 0)) (Workload.Keyspace.all_keys ks ~node:0));
  let rng = Sim.Rng.split (Sim.Engine.rng engine) in
  let spec =
    {
      Workload.Driver.default_spec with
      duration = 100.0;
      update_rate = 0.0;
      query_rate = 0.0;
      long_query_period = 0.0;
    }
  in
  let r = Workload.Driver.run (module Baseline.Ava3_db) db ~engine ~rng ~keyspace:ks ~spec in
  check_int "nothing committed" 0 r.Workload.Driver.committed;
  check_int "nothing queried" 0 r.Workload.Driver.queries_ok

(* {1 Report renderer} *)

let test_report_render () =
  let out =
    Dbsim.Report.render
      ~header:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1" ]; [ "longer-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: rule :: row1 :: _ ->
      check_bool "header contains both columns" true
        (String.length header >= String.length "longer-name  value");
      check_bool "rule is dashes" true (String.for_all (fun c -> c = '-' || c = ' ') rule);
      check_bool "row padded to column" true
        (String.length row1 <= String.length rule + 2)
  | _ -> Alcotest.fail "unexpected shape");
  (* No trailing spaces on any line. *)
  List.iter
    (fun l ->
      if String.length l > 0 then
        check_bool "no trailing space" true (l.[String.length l - 1] <> ' '))
    lines

let test_report_ragged_rows () =
  (* Rows shorter than the header must not crash the renderer. *)
  let out =
    Dbsim.Report.render ~header:[ "a"; "b"; "c" ] ~rows:[ [ "x" ]; [ "y"; "z" ] ]
  in
  check_bool "rendered" true (String.length out > 0)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "histogram",
        [
          Alcotest.test_case "empty" `Quick test_histogram_empty;
          Alcotest.test_case "single sample" `Quick test_histogram_single;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
        ] );
      ( "driver",
        [
          Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
          Alcotest.test_case "rates scale" `Quick test_driver_rates_scale;
          Alcotest.test_case "hot node skew" `Quick test_hot_node_skew;
          Alcotest.test_case "arrival storms" `Quick test_arrival_storms;
          Alcotest.test_case "zero rates" `Quick test_zero_rate_streams;
        ] );
      ( "report",
        [
          Alcotest.test_case "render" `Quick test_report_render;
          Alcotest.test_case "ragged rows" `Quick test_report_ragged_rows;
        ] );
      ("properties", qc [ prop_histogram_percentiles_ordered ]);
    ]
